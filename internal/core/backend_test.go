package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
	"greenvm/internal/vm"
)

// fakePool is a MultiRemote over two in-process servers with
// scriptable per-backend failures: a down backend loses every exchange
// with an attributed BackendError, and ProbeBackend answers from a
// scriptable probe error — the shape the per-backend breaker and
// failover machinery is specified against.
type fakePool struct {
	ids      []string
	servers  map[string]*Server
	down     map[string]bool
	probeErr map[string]error
	served   map[string]int
}

func newFakePool(p *Server, ids ...string) *fakePool {
	f := &fakePool{
		servers:  map[string]*Server{},
		down:     map[string]bool{},
		probeErr: map[string]error{},
		served:   map[string]int{},
	}
	for _, id := range ids {
		f.ids = append(f.ids, id)
		f.servers[id] = p
	}
	return f
}

func (f *fakePool) Backends() []string { return f.ids }

func (f *fakePool) Execute(ctx context.Context, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, error) {

	res, servTime, queued, _, err := f.ExecuteOn(ctx, f.ids[0], clientID, class, method, argBytes, reqTime, estEnd)
	return res, servTime, queued, err
}

func (f *fakePool) ExecuteOn(ctx context.Context, backend, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, string, error) {

	s, ok := f.servers[backend]
	if !ok {
		return nil, 0, false, "", fmt.Errorf("fakePool: unknown backend %q", backend)
	}
	if f.down[backend] {
		return nil, 0, false, backend, &BackendError{Backend: backend,
			Err: fmt.Errorf("%w: fakePool: backend %s is down", radio.ErrConnectionLost, backend)}
	}
	f.served[backend]++
	res, servTime, queued, err := s.Execute(ctx, clientID, class, method, argBytes, reqTime, estEnd)
	return res, servTime, queued, backend, err
}

func (f *fakePool) ProbeBackend(ctx context.Context, backend string, at energy.Seconds) error {
	return f.probeErr[backend]
}

func (f *fakePool) CompiledBody(ctx context.Context, qname string, level jit.Level) (*isa.Code, int, error) {
	return f.servers[f.ids[0]].CompiledBody(ctx, qname, level)
}

var _ MultiRemote = (*fakePool)(nil)
var _ BackendProber = (*fakePool)(nil)

// newPoolClient wires a client against a two-backend fakePool, tuned
// so a retry is always economically worthwhile (tiny listen windows)
// and a single attributed loss opens a backend breaker.
func newPoolClient(t *testing.T, strategy Strategy) (*Client, *fakePool) {
	t.Helper()
	p := testProgram(t)
	pool := newFakePool(NewServer(p), "a", "b")
	c := New(ClientConfig{ID: "client-1", Prog: p, Server: pool,
		Channel: radio.Fixed{Cls: radio.Class4}, Strategy: strategy, Seed: 7})
	c.Breaker.Threshold = 1
	c.Timeout = 1e-4
	c.RetryBackoff = 1e-4
	pr := newProfiler(p)
	tg := workTarget()
	prof, err := pr.ProfileTarget(tg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(tg, prof); err != nil {
		t.Fatal(err)
	}
	return c, pool
}

// homeOf mirrors the client's anti-herding home-backend pick, so the
// test knows which backend the first placement hint names.
func homeOf(c *Client, ids []string) string {
	return ids[int(fnvHash(c.ID)%uint64(len(ids)))]
}

// TestBackendBreakerFailover is the tentpole's core path: a loss
// attributed to the home backend opens that backend's breaker only,
// and the in-flight invocation retries onto the surviving backend —
// one failover, no fallback to local.
func TestBackendBreakerFailover(t *testing.T) {
	c, pool := newPoolClient(t, StrategyR)
	home := homeOf(c, pool.ids)
	other := "a"
	if home == "a" {
		other = "b"
	}
	pool.down[home] = true

	res, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(600)})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if res.I == 0 {
		t.Error("invocation returned a zero result")
	}
	if c.Stats.Failovers != 1 {
		t.Errorf("Failovers = %d, want 1", c.Stats.Failovers)
	}
	if c.Stats.Retries != 1 {
		t.Errorf("Retries = %d, want 1", c.Stats.Retries)
	}
	if c.Stats.Fallbacks != 0 {
		t.Errorf("Fallbacks = %d, want 0 — the invocation must fail over remotely, not locally", c.Stats.Fallbacks)
	}
	if got := c.Stats.LinkDownsBy[home]; got != 1 {
		t.Errorf("LinkDownsBy[%s] = %d, want 1", home, got)
	}
	if c.Stats.LinkDowns != 1 {
		// The aggregate counts backend-scoped transitions too; the By map
		// is what tells them apart from a pool-wide outage.
		t.Errorf("LinkDowns = %d, want 1", c.Stats.LinkDowns)
	}
	if c.Breaker.State() != BreakerClosed {
		t.Error("the shared link breaker must stay closed on an attributed loss")
	}
	if got := c.BackendBreakerState(home); got != BreakerOpen {
		t.Errorf("home breaker state %v, want open", got)
	}
	if got := c.BackendBreakerState(other); got != BreakerClosed {
		t.Errorf("surviving breaker state %v, want closed", got)
	}
	if pool.served[other] == 0 {
		t.Error("surviving backend never served the failover")
	}
	if !c.RemoteAvailable() {
		t.Error("pool must stay available while one backend survives")
	}
}

// TestGlobalBreakerBlindsWholePool is the PR 6 comparison shape: with
// per-backend breakers off, the same single-backend loss strikes the
// shared link breaker, which takes the entire pool off the table — the
// invocation falls back to local instead of failing over.
func TestGlobalBreakerBlindsWholePool(t *testing.T) {
	c, pool := newPoolClient(t, StrategyR)
	c.BackendBreakers = false
	home := homeOf(c, pool.ids)
	pool.down[home] = true

	if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(600)}); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if c.Stats.Failovers != 0 {
		t.Errorf("Failovers = %d, want 0 — a global breaker has no surviving backend to re-place on", c.Stats.Failovers)
	}
	if c.Stats.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1", c.Stats.Fallbacks)
	}
	if c.Stats.LinkDowns != 1 {
		t.Errorf("LinkDowns = %d, want 1 (link-scoped)", c.Stats.LinkDowns)
	}
	if len(c.Stats.LinkDownsBy) != 0 {
		t.Errorf("LinkDownsBy = %v, want empty in global mode", c.Stats.LinkDownsBy)
	}
	if c.RemoteAvailable() {
		t.Error("the open link breaker must hold the whole pool down")
	}
}

// TestHalfOpenProbeDuringRestart drives a backend breaker through a
// flapping backend's restart window: the half-open probe finds the
// backend still mid-restart (probe error), re-opens the breaker with a
// doubled cooldown, and the pool stays available on the surviving
// backend throughout; once the backend recovers, the next probe closes
// the breaker.
func TestHalfOpenProbeDuringRestart(t *testing.T) {
	c, pool := newPoolClient(t, StrategyR)
	c.Breaker.Cooldown = 0.01
	c.Breaker.MaxCooldown = 0.08
	restarting := errors.New("backend mid-restart")
	pool.probeErr["a"] = restarting

	// Open a's breaker with one attributed loss.
	c.noteRemoteFailureOn("a")
	if got := c.BackendBreakerState("a"); got != BreakerOpen {
		t.Fatalf("breaker state %v after attributed loss, want open", got)
	}
	if got := c.Stats.LinkDownsBy["a"]; got != 1 {
		t.Fatalf("LinkDownsBy[a] = %d, want 1", got)
	}

	// Cooldown elapses while the backend is still mid-restart: the
	// availability check probes, the probe fails, the breaker re-opens.
	c.Clock += 0.02
	if !c.RemoteAvailable() {
		t.Fatal("pool must stay available on backend b during a's restart")
	}
	if c.Stats.Probes != 1 {
		t.Errorf("Probes = %d, want 1 (the half-open probe must be charged)", c.Stats.Probes)
	}
	if got := c.Stats.LinkDownsBy["a"]; got != 2 {
		t.Errorf("LinkDownsBy[a] = %d, want 2 (failed probe re-opens)", got)
	}
	if got := c.BackendBreakerState("a"); got != BreakerOpen {
		t.Errorf("breaker state %v after failed probe, want open", got)
	}

	// Within the doubled cooldown no second probe fires.
	c.Clock += 0.01
	if !c.RemoteAvailable() {
		t.Fatal("pool availability must not regress")
	}
	if c.Stats.Probes != 1 {
		t.Errorf("Probes = %d, want still 1 inside the doubled cooldown", c.Stats.Probes)
	}

	// The backend restarts; the next probe closes the breaker.
	pool.probeErr["a"] = nil
	c.Clock += 0.02
	if !c.RemoteAvailable() {
		t.Fatal("pool must be available after recovery")
	}
	if c.Stats.Probes != 2 {
		t.Errorf("Probes = %d, want 2", c.Stats.Probes)
	}
	if got := c.BackendBreakerState("a"); got != BreakerClosed {
		t.Errorf("breaker state %v after successful probe, want closed", got)
	}
	if got := c.Stats.LinkUpsBy["a"]; got != 1 {
		t.Errorf("LinkUpsBy[a] = %d, want 1", got)
	}
}

// TestCandidatesExcludeOpenBackends pins the placement side of the
// breaker: an open backend is still priced (Open flag) but the
// candidate index and placement hint move to the survivor, and when
// every breaker is open the pick degrades to breaker-blind instead of
// pricing the pool infinite.
func TestCandidatesExcludeOpenBackends(t *testing.T) {
	c, pool := newPoolClient(t, StrategyR)
	home := homeOf(c, pool.ids)
	other := "a"
	if home == "a" {
		other = "b"
	}

	c.noteRemoteFailureOn(home)
	prof := c.profiles[c.Prog.FindMethod("App", "work")]
	cands, ci := c.RemoteCandidates(prof, 600, c.TxPowerEstimate())
	if len(cands) != 2 {
		t.Fatalf("candidates %d, want 2", len(cands))
	}
	if cands[ci].ID != other {
		t.Errorf("cheapest candidate %q, want the survivor %q", cands[ci].ID, other)
	}
	for _, cand := range cands {
		if cand.ID == home && !cand.Open {
			t.Errorf("candidate %q must be marked Open", home)
		}
	}
	if hint := c.placementHint(); hint != other {
		t.Errorf("placement hint %q, want %q", hint, other)
	}

	// Open the survivor too: the hint degrades to breaker-blind.
	c.noteRemoteFailureOn(other)
	if hint := c.placementHint(); hint == "" {
		t.Error("hint must stay non-empty when every breaker is open")
	}
	_, ci = c.RemoteCandidates(prof, 600, c.TxPowerEstimate())
	if ci < 0 || ci > 1 {
		t.Errorf("candidate index %d out of range under all-open degradation", ci)
	}
}
