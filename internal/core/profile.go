package core

import (
	"fmt"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/fit"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// Target binds a potential method to its workload: how to build
// arguments of a given size parameter, and how to read the size
// parameter back from arguments at runtime (the helper method's view).
type Target struct {
	Class, Method string
	// MakeArgs builds arguments with the given size parameter in the
	// VM's heap. It must be deterministic for a given (size, seed).
	MakeArgs func(v *vm.VM, size int, r *rng.RNG) ([]vm.Slot, error)
	// SizeOf recovers the size parameter from live arguments.
	SizeOf func(v *vm.VM, args []vm.Slot) (float64, error)
	// ProfileSizes is the grid the profiler measures; it should span
	// the sizes the workload will use.
	ProfileSizes []int
	// NLogN hints that cost curves follow n*log n (e.g. sorting).
	NLogN bool
}

// QName returns the qualified method name.
func (t *Target) QName() string { return t.Class + "." + t.Method }

// Profile is the per-method data the paper embeds in class files as
// static final variables for the helper methods: curve-fitted energy
// and time estimators per execution mode, serialized argument/result
// sizes, server execution time, and per-plan compile costs and code
// sizes per optimization level.
type Profile struct {
	Target *Target

	// EnergyOf[mode] estimates client energy (J) vs size parameter for
	// the four local modes.
	EnergyOf [numLocalModes]fit.Predictor
	// TimeOf[mode] estimates client execution time (s) vs size.
	TimeOf [numLocalModes]fit.Predictor
	// TxBytes/RxBytes estimate serialized argument and result sizes.
	TxBytes fit.Predictor
	RxBytes fit.Predictor
	// ServerTime estimates the server-side execution time (s) vs size.
	ServerTime fit.Predictor

	// CompileEnergy[level-1] is the energy to locally compile the whole
	// compilation plan (the potential method plus its callees) at that
	// level, excluding the one-time compiler-classes load.
	CompileEnergy [3]energy.Joules
	// PlanCodeBytes[level-1] is the total native code size of the plan,
	// which a remote compilation must download.
	PlanCodeBytes [3]int

	// MaxFitErr is the worst relative error observed when validating
	// the curves against held-out runs (the paper reports <= 2%).
	MaxFitErr float64
}

// Profiler measures methods on scratch VMs and fits estimator curves.
type Profiler struct {
	Prog        *bytecode.Program
	ClientModel *energy.CPUModel
	ServerModel *energy.CPUModel
	Seed        uint64
}

// measurement is one profiled data point.
type measurement struct {
	size     int
	energy   [numLocalModes]float64
	time     [numLocalModes]float64
	txBytes  float64
	rxBytes  float64
	servTime float64
}

// compilePlan returns the potential method and every method statically
// reachable from it through calls (its "compilation plan", paper
// §3.1), excluding other potential methods (they are intercepted and
// decided independently).
func compilePlan(prog *bytecode.Program, root *bytecode.Method) []*bytecode.Method {
	seen := map[*bytecode.Method]bool{root: true}
	order := []*bytecode.Method{root}
	for i := 0; i < len(order); i++ {
		for _, in := range order[i].Code {
			if in.Op != bytecode.INVOKESTATIC && in.Op != bytecode.INVOKEVIRTUAL {
				continue
			}
			callee := prog.Method(int(in.A))
			if callee == nil || seen[callee] || callee.Potential || len(callee.Code) == 0 {
				continue
			}
			seen[callee] = true
			order = append(order, callee)
			// Virtual calls may dispatch to overrides; include them.
			if in.Op == bytecode.INVOKEVIRTUAL {
				for _, c := range prog.Classes {
					if m := c.Own(callee.Name); m != nil && !m.Static && !seen[m] &&
						c.IsSubclassOf(callee.Class) && len(m.Code) > 0 && !m.Potential {
						seen[m] = true
						order = append(order, m)
					}
				}
			}
		}
	}
	return order
}

// runOnce executes the target once on a fresh VM in the given local
// mode and returns (result, energy, time).
func runOnce(prog *bytecode.Program, model *energy.CPUModel, t *Target,
	size int, seed uint64, mode Mode, bodies map[*bytecode.Method]*isa.Code) (vm.Slot, energy.Joules, energy.Seconds, error) {

	v := vm.New(prog, model)
	m := prog.FindMethod(t.Class, t.Method)
	if m == nil {
		return vm.Slot{}, 0, 0, fmt.Errorf("core: no method %s", t.QName())
	}
	if mode.IsCompiled() {
		v.Dispatch = vm.DispatchFunc(func(mm *bytecode.Method) *isa.Code { return bodies[mm] })
	}
	args, err := t.MakeArgs(v, size, rng.New(seed))
	if err != nil {
		return vm.Slot{}, 0, 0, err
	}
	// Exclude input construction from the measurement.
	v.Acct.Reset()
	v.Hier.Flush()
	res, err := v.Invoke(m, args)
	if err != nil {
		return vm.Slot{}, 0, 0, fmt.Errorf("core: profiling %s at %v: %w", t.QName(), mode, err)
	}
	return res, v.Acct.Total(), v.Acct.Time(), nil
}

// ProfileTarget measures the target across its size grid, fits the
// estimator curves, stores them as method attributes, and returns the
// profile.
func (p *Profiler) ProfileTarget(t *Target) (*Profile, error) {
	m := p.Prog.FindMethod(t.Class, t.Method)
	if m == nil {
		return nil, fmt.Errorf("core: no method %s", t.QName())
	}
	if len(t.ProfileSizes) < 4 {
		return nil, fmt.Errorf("core: %s: need at least 4 profile sizes", t.QName())
	}
	plan := compilePlan(p.Prog, m)

	prof := &Profile{Target: t}

	// Compile the plan once per level: cost and code size.
	bodiesByLevel := [3]map[*bytecode.Method]*isa.Code{}
	for lv := jit.Level1; lv <= jit.Level3; lv++ {
		bodies := map[*bytecode.Method]*isa.Code{}
		acct := energy.NewAccount(p.ClientModel)
		total := 0
		for _, mm := range plan {
			code, st, err := jit.CompileCached(p.Prog, mm, lv)
			if err != nil {
				return nil, err
			}
			st.Charge(acct)
			total += st.CodeBytes()
			bodies[mm] = code
			// Per-method attributes for the AA compile decision.
			mm.SetAttr(fmt.Sprintf("compile.energy.%s", lv), float64(st.Energy(p.ClientModel)))
			mm.SetAttr(fmt.Sprintf("compile.bytes.%s", lv), float64(st.CodeBytes()))
		}
		prof.CompileEnergy[lv-jit.Level1] = acct.Total()
		prof.PlanCodeBytes[lv-jit.Level1] = total
		bodiesByLevel[lv-jit.Level1] = bodies
	}

	// Measure the size grid.
	var ms []measurement
	for _, size := range t.ProfileSizes {
		mr := measurement{size: size}
		for mode := ModeInterp; mode <= ModeL3; mode++ {
			var bodies map[*bytecode.Method]*isa.Code
			if mode.IsCompiled() {
				// Install fresh code addresses per measurement VM.
				bodies = bodiesByLevel[mode.Level()-jit.Level1]
			}
			_, e, tt, err := runOnce(p.Prog, p.ClientModel, t, size, p.Seed, mode, bodies)
			if err != nil {
				return nil, err
			}
			mr.energy[mode] = float64(e)
			mr.time[mode] = float64(tt)
		}
		// Serialized sizes and server time.
		v := vm.New(p.Prog, p.ClientModel)
		args, err := t.MakeArgs(v, size, rng.New(p.Seed))
		if err != nil {
			return nil, err
		}
		ab, err := v.Heap.EncodeArgs(m, args)
		if err != nil {
			return nil, err
		}
		mr.txBytes = float64(len(ab))
		res, err := v.Invoke(m, args)
		if err != nil {
			return nil, err
		}
		rb, err := v.Heap.EncodeValue(m.Ret.Kind, res)
		if err != nil {
			return nil, err
		}
		mr.rxBytes = float64(len(rb))
		_, _, st, err := runOnce(p.Prog, p.ServerModel, t, size, p.Seed, ModeL3, bodiesByLevel[2])
		if err != nil {
			return nil, err
		}
		mr.servTime = float64(st)
		ms = append(ms, mr)
	}

	// Fit curves.
	bases := []fit.Basis{fit.Poly(2), fit.Poly(1)}
	if t.NLogN {
		bases = append([]fit.Basis{fit.PolyLog()}, bases...)
	}
	xs := make([]float64, len(ms))
	for i, mr := range ms {
		xs[i] = float64(mr.size)
	}
	column := func(get func(measurement) float64) []float64 {
		ys := make([]float64, len(ms))
		for i, mr := range ms {
			ys[i] = get(mr)
		}
		return ys
	}
	// The paper fits parametric curves; when a curve cannot explain
	// the deterministic measurements within 2% (cache-regime changes),
	// the profile falls back to a table-assisted estimator.
	const fitTol = 0.02
	var err error
	for mode := ModeInterp; mode <= ModeL3; mode++ {
		mode := mode
		if prof.EnergyOf[mode], err = fit.BestPredictor(xs, column(func(m measurement) float64 { return m.energy[mode] }), fitTol, bases...); err != nil {
			return nil, err
		}
		if prof.TimeOf[mode], err = fit.BestPredictor(xs, column(func(m measurement) float64 { return m.time[mode] }), fitTol, bases...); err != nil {
			return nil, err
		}
	}
	if prof.TxBytes, err = fit.BestPredictor(xs, column(func(m measurement) float64 { return m.txBytes }), fitTol, bases...); err != nil {
		return nil, err
	}
	if prof.RxBytes, err = fit.BestPredictor(xs, column(func(m measurement) float64 { return m.rxBytes }), fitTol, bases...); err != nil {
		return nil, err
	}
	if prof.ServerTime, err = fit.BestPredictor(xs, column(func(m measurement) float64 { return m.servTime }), fitTol, bases...); err != nil {
		return nil, err
	}
	for mode := ModeInterp; mode <= ModeL3; mode++ {
		if e := fit.PredictorMaxRelErr(prof.EnergyOf[mode], xs, column(func(m measurement) float64 { return m.energy[mode] })); e > prof.MaxFitErr {
			prof.MaxFitErr = e
		}
	}

	// Mirror key estimator constants into class-file attributes, as
	// the paper stores them for the helper methods.
	for lv := 0; lv < 3; lv++ {
		m.SetAttr(fmt.Sprintf("plan.compile.energy.L%d", lv+1), float64(prof.CompileEnergy[lv]))
		m.SetAttr(fmt.Sprintf("plan.code.bytes.L%d", lv+1), float64(prof.PlanCodeBytes[lv]))
	}
	if mod, ok := prof.EnergyOf[ModeInterp].(*fit.Model); ok {
		for i, c := range mod.Coef {
			m.SetAttr(fmt.Sprintf("curve.interp.c%d", i), c)
		}
	}
	return prof, nil
}

// ValidateProfile re-runs the target at held-out sizes and returns the
// worst relative error of the local-mode energy estimators — the
// paper's "within 2% of the actual energy value" check.
func (p *Profiler) ValidateProfile(t *Target, prof *Profile, sizes []int) (float64, error) {
	worst := 0.0
	m := p.Prog.FindMethod(t.Class, t.Method)
	plan := compilePlan(p.Prog, m)
	bodiesByLevel := [3]map[*bytecode.Method]*isa.Code{}
	for lv := jit.Level1; lv <= jit.Level3; lv++ {
		bodies := map[*bytecode.Method]*isa.Code{}
		for _, mm := range plan {
			code, _, err := jit.CompileCached(p.Prog, mm, lv)
			if err != nil {
				return 0, err
			}
			bodies[mm] = code
		}
		bodiesByLevel[lv-jit.Level1] = bodies
	}
	for _, size := range sizes {
		for mode := ModeInterp; mode <= ModeL3; mode++ {
			var bodies map[*bytecode.Method]*isa.Code
			if mode.IsCompiled() {
				bodies = bodiesByLevel[mode.Level()-jit.Level1]
			}
			_, e, _, err := runOnce(p.Prog, p.ClientModel, t, size, p.Seed+1, mode, bodies)
			if err != nil {
				return 0, err
			}
			est := prof.EnergyOf[mode].Eval(float64(size))
			actual := float64(e)
			if actual > 0 {
				rel := abs(est-actual) / actual
				if rel > worst {
					worst = rel
				}
			}
		}
	}
	return worst, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// MeasureOnce runs the target once, interpreted, on a fresh client VM
// with the given input seed; exposed for calibration tooling.
func MeasureOnce(prog *bytecode.Program, t *Target, size int, seed uint64) (energy.Joules, error) {
	_, e, _, err := runOnce(prog, energy.MicroSPARCIIep(), t, size, seed, ModeInterp, nil)
	return e, err
}

// ValidateProfileDetail reports per-mode estimator errors at one size;
// exposed for calibration tooling.
func (p *Profiler) ValidateProfileDetail(t *Target, prof *Profile, size int) ([4]float64, error) {
	var out [4]float64
	m := p.Prog.FindMethod(t.Class, t.Method)
	plan := compilePlan(p.Prog, m)
	for mode := ModeInterp; mode <= ModeL3; mode++ {
		var bodies map[*bytecode.Method]*isa.Code
		if mode.IsCompiled() {
			bodies = map[*bytecode.Method]*isa.Code{}
			for _, mm := range plan {
				code, _, err := jit.CompileCached(p.Prog, mm, mode.Level())
				if err != nil {
					return out, err
				}
				bodies[mm] = code
			}
		}
		_, e, _, err := runOnce(p.Prog, p.ClientModel, t, size, p.Seed+1, mode, bodies)
		if err != nil {
			return out, err
		}
		actual := float64(e)
		if actual > 0 {
			out[mode] = abs(prof.EnergyOf[mode].Eval(float64(size))-actual) / actual
		}
	}
	return out, nil
}

// MeasureOnceMode runs the target once in the given local mode;
// exposed for calibration tooling.
func MeasureOnceMode(prog *bytecode.Program, t *Target, size int, seed uint64, mode Mode) (energy.Joules, error) {
	var bodies map[*bytecode.Method]*isa.Code
	if mode.IsCompiled() {
		m := prog.FindMethod(t.Class, t.Method)
		bodies = map[*bytecode.Method]*isa.Code{}
		for _, mm := range compilePlan(prog, m) {
			code, _, err := jit.CompileCached(prog, mm, mode.Level())
			if err != nil {
				return 0, err
			}
			bodies[mm] = code
		}
	}
	_, e, _, err := runOnce(prog, energy.MicroSPARCIIep(), t, size, seed, mode, bodies)
	return e, err
}
