package core

import (
	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
)

// The event layer is the client's single observability stream: every
// interesting runtime occurrence (an invocation decided and executed,
// a fallback, a compilation, a code-cache eviction, a memo replay) is
// emitted as one typed Event to the attached sinks. Experiments,
// tracing and metrics all consume this stream instead of reaching
// into scattered counters.

// EventKind discriminates the events a client emits.
type EventKind int

// The event kinds.
const (
	// EvInvoke is one completed potential-method invocation: the
	// decided mode plus its measured energy/time deltas.
	EvInvoke EventKind = iota
	// EvFallback is a connection loss that forced local execution (or,
	// during adaptive compilation, a local compile instead of a
	// download).
	EvFallback
	// EvLocalCompile is one method body compiled by the client's JIT.
	EvLocalCompile
	// EvRemoteCompile is one pre-compiled body downloaded from the
	// server.
	EvRemoteCompile
	// EvEvict is one body unlinked by the code cache's LRU policy.
	EvEvict
	// EvMemoHit is one invocation replayed from the memo instead of
	// re-simulated.
	EvMemoHit
	// EvRetry is one re-attempted remote exchange after a loss (its
	// backoff listen is already charged when it is emitted).
	EvRetry
	// EvProbe is one half-open circuit-breaker probe; FellBack is
	// false when the probe succeeded.
	EvProbe
	// EvLinkDown is the circuit breaker opening after consecutive
	// losses: remote options are off the table until a probe succeeds.
	EvLinkDown
	// EvLinkUp is the circuit breaker closing after a successful
	// half-open probe.
	EvLinkUp
)

// Event is one occurrence in a client's execution stream. Method is
// set for method-scoped events (link-state events may carry none);
// the remaining fields are populated per kind (see the EventKind
// docs).
type Event struct {
	Kind   EventKind
	Method *bytecode.Method
	Mode   Mode           // EvInvoke: the decided mode
	Level  jit.Level      // compiles and evictions: the body's level
	Size   float64        // EvInvoke: the invocation's size parameter
	Energy energy.Joules  // EvInvoke: energy delta of the invocation
	Time   energy.Seconds // EvInvoke: wall-time delta of the invocation
	// FellBack marks an EvInvoke whose remote execution was lost and
	// re-ran locally (and an EvProbe that failed).
	FellBack bool
	// Radio is a snapshot of the link's counters, carried by EvInvoke
	// so sinks can observe outage behaviour without reaching into the
	// client.
	Radio radio.Telemetry
}

// EventSink consumes client events. Sinks run synchronously on the
// simulation goroutine and must not retain the event's Method beyond
// the client's lifetime.
type EventSink interface {
	Emit(Event)
}

// Sinks fans events out to every attached sink.
type Sinks struct {
	sinks []EventSink
}

// Attach adds a sink to the fan-out.
func (s *Sinks) Attach(sink EventSink) { s.sinks = append(s.sinks, sink) }

// Emit delivers the event to every attached sink.
func (s *Sinks) Emit(e Event) {
	for _, sink := range s.sinks {
		sink.Emit(e)
	}
}

// Stats accumulates the counters the experiments consume. Every
// client has one attached from construction, at Client.Stats.
type Stats struct {
	// ModeCounts[mode] counts invocations decided into each mode.
	ModeCounts [NumModes]int
	// Fallbacks counts connection-loss fallbacks (execution and
	// compilation-download ones alike).
	Fallbacks int
	// LocalCompiles and RemoteCompiles count method bodies obtained by
	// running the local JIT vs. downloading from the server.
	LocalCompiles  int
	RemoteCompiles int
	// Evictions counts bodies unlinked by the code cache's LRU policy.
	Evictions int
	// MemoHits counts invocations replayed from the memo.
	MemoHits int
	// Retries counts re-attempted remote exchanges after losses.
	Retries int
	// Probes counts half-open circuit-breaker probes; LinkDowns and
	// LinkUps count the breaker's open/close transitions.
	Probes    int
	LinkDowns int
	LinkUps   int
	// Radio is the link-telemetry snapshot carried by the most recent
	// EvInvoke (losses, retransmits, stalls, exchanged bytes).
	Radio radio.Telemetry
}

// Emit implements EventSink.
func (s *Stats) Emit(e Event) {
	switch e.Kind {
	case EvInvoke:
		s.ModeCounts[e.Mode]++
		s.Radio = e.Radio
	case EvRetry:
		s.Retries++
	case EvProbe:
		s.Probes++
	case EvLinkDown:
		s.LinkDowns++
	case EvLinkUp:
		s.LinkUps++
	case EvFallback:
		s.Fallbacks++
	case EvLocalCompile:
		s.LocalCompiles++
	case EvRemoteCompile:
		s.RemoteCompiles++
	case EvEvict:
		s.Evictions++
	case EvMemoHit:
		s.MemoHits++
	}
}

// InvokeRecord describes one potential-method invocation, as recorded
// by a Trace sink.
type InvokeRecord struct {
	Method   string
	Mode     Mode
	Size     float64
	Energy   energy.Joules
	Time     energy.Seconds
	FellBack bool
}

// Trace records every invocation event; attach one with
// Client.EnableTrace (or Sinks.Attach) when a per-invocation log is
// wanted.
type Trace struct {
	Records []InvokeRecord
}

// Emit implements EventSink.
func (t *Trace) Emit(e Event) {
	if e.Kind != EvInvoke {
		return
	}
	t.Records = append(t.Records, InvokeRecord{
		Method:   e.Method.QName(),
		Mode:     e.Mode,
		Size:     e.Size,
		Energy:   e.Energy,
		Time:     e.Time,
		FellBack: e.FellBack,
	})
}
