package core

import (
	"fmt"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
)

// The event layer is the client's single observability stream: every
// interesting runtime occurrence (an invocation decided and executed,
// a fallback, a compilation, a code-cache eviction, a memo replay) is
// emitted as one typed Event to the attached sinks. Experiments,
// tracing and metrics all consume this stream instead of reaching
// into scattered counters.

// EventKind discriminates the events a client emits.
type EventKind int

// The event kinds.
const (
	// EvInvoke is one completed potential-method invocation: the
	// decided mode plus its measured energy/time deltas.
	EvInvoke EventKind = iota
	// EvFallback is a connection loss that forced local execution (or,
	// during adaptive compilation, a local compile instead of a
	// download).
	EvFallback
	// EvLocalCompile is one method body compiled by the client's JIT.
	EvLocalCompile
	// EvRemoteCompile is one pre-compiled body downloaded from the
	// server.
	EvRemoteCompile
	// EvEvict is one body unlinked by the code cache's LRU policy.
	EvEvict
	// EvMemoHit is one invocation replayed from the memo instead of
	// re-simulated.
	EvMemoHit
	// EvRetry is one re-attempted remote exchange after a loss (its
	// backoff listen is already charged when it is emitted).
	EvRetry
	// EvProbe is one half-open circuit-breaker probe; FellBack is
	// false when the probe succeeded.
	EvProbe
	// EvLinkDown is the circuit breaker opening after consecutive
	// losses: remote options are off the table until a probe succeeds.
	EvLinkDown
	// EvLinkUp is the circuit breaker closing after a successful
	// half-open probe.
	EvLinkUp
	// EvEstimate is one adaptive decision: the policy's per-mode
	// predicted energies at decision time, carried in Est. Emitted
	// immediately before the EvInvoke it predicts, so estimate and
	// outcome pair 1:1 per method.
	EvEstimate
	// EvPhase is one span of the simulated-clock execution timeline
	// (interpret, native run, ship, listen, download, compile): At is
	// the span's start, Time its duration.
	EvPhase
	// EvShed is one remote exchange the server rejected with a busy
	// error (its admission queue was full). The client has already
	// received the busy frame when it is emitted; the invocation falls
	// back to local execution and the busy-rate estimate inflates
	// future remote prices. Backend names the shedding backend when
	// the client talks to a pool.
	EvShed
	// EvPlace is one multi-backend placement outcome: Backend names
	// the backend that served the exchange. Emitted only when the
	// client's Server is a pool — single-server streams are unchanged.
	EvPlace
	// EvFailover is one in-flight invocation re-placed onto a surviving
	// backend after a loss attributed to another: From names the backend
	// the exchange was lost on, Backend the one the retry is hinted at.
	// Emitted after the EvRetry that pays the backoff, so failover work
	// stays inside the invocation's existing retry budget.
	EvFailover
)

// Phase identifies one span kind of the execution timeline.
type Phase int

// The timeline phases.
const (
	// PhaseInterp is a local interpreted execution of the potential
	// method (its callees run interpreted too).
	PhaseInterp Phase = iota
	// PhaseNative is a local execution with the plan compiled at a
	// level (Event.Level carries it).
	PhaseNative
	// PhaseShip is one offload exchange: serialize, transmit, sleep
	// while the server computes, receive, deserialize. FellBack marks
	// an exchange that was lost mid-flight.
	PhaseShip
	// PhaseListen is a receiver-up wait: the §3.2 timeout listen after
	// a loss, or a retry's backoff window.
	PhaseListen
	// PhaseDownload is one pre-compiled body download (request,
	// receive, link).
	PhaseDownload
	// PhaseCompile is one local JIT compilation of a plan method.
	PhaseCompile

	// NumPhases counts the phases.
	NumPhases = int(PhaseCompile) + 1
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseInterp:
		return "interp"
	case PhaseNative:
		return "native"
	case PhaseShip:
		return "ship"
	case PhaseListen:
		return "listen"
	case PhaseDownload:
		return "download"
	case PhaseCompile:
		return "compile"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Estimate is a policy's per-mode pricing for one adaptive decision,
// recorded so sinks can audit the estimators against measured
// outcomes. Costs are per-invocation: the amortized comparison value
// the policy ranked, divided by its amortization count, so they are
// directly comparable with the EvInvoke energy that follows.
type Estimate struct {
	// K is the policy's per-method invocation count (amortization
	// denominator) at this decision.
	K int
	// PredSize and PredPower are the EWMA predictions the costs were
	// evaluated at.
	PredSize  float64
	PredPower float64
	// Cost[mode] is the predicted per-invocation energy (J) of each
	// mode; valid only where Considered[mode] is true (remote drops
	// out while the breaker holds the link down).
	Cost [NumModes]float64
	// Considered marks the modes the policy actually priced.
	Considered [NumModes]bool
	// Chosen is the decided mode (the argmin over considered costs).
	Chosen Mode
	// Backends carries the per-backend remote candidates the ModeRemote
	// cost was ranked from (nil for a single anonymous server), and
	// Backend the cheapest backend's ID — the client's placement hint.
	Backends []BackendCandidate
	Backend  string
}

// BestCost returns the cheapest considered per-invocation estimate —
// the baseline the auditor's regret is measured against.
func (e *Estimate) BestCost() float64 {
	best, ok := 0.0, false
	for m := 0; m < NumModes; m++ {
		if !e.Considered[m] {
			continue
		}
		if !ok || e.Cost[m] < best {
			best, ok = e.Cost[m], true
		}
	}
	return best
}

// Event is one occurrence in a client's execution stream. Method is
// set for method-scoped events (link-state events may carry none);
// the remaining fields are populated per kind (see the EventKind
// docs).
type Event struct {
	Kind   EventKind
	Method *bytecode.Method
	Mode   Mode           // EvInvoke: the decided mode
	Level  jit.Level      // compiles, evictions, native/compile phases: the body's level
	Size   float64        // EvInvoke: the invocation's size parameter
	Energy energy.Joules  // EvInvoke: energy delta of the invocation
	Time   energy.Seconds // EvInvoke and EvPhase: wall-time delta (span duration)
	// At is the simulated-clock timestamp of the event; for span
	// events (EvInvoke, EvPhase) it is the span's start, so the span
	// covers [At, At+Time]. Events emitted by clock-less components
	// (code-cache evictions) carry zero.
	At energy.Seconds
	// Phase identifies the span kind of an EvPhase.
	Phase Phase
	// Est carries the per-mode predicted costs of an EvEstimate.
	Est *Estimate
	// FellBack marks an EvInvoke whose remote execution was lost and
	// re-ran locally (also an EvProbe that failed, and a PhaseShip
	// span that was lost mid-flight).
	FellBack bool
	// Backend names the backend involved in a multi-backend event: the
	// server that answered an EvPlace, the one that shed an EvShed, the
	// one whose per-backend breaker transitioned on an
	// EvLinkDown/EvLinkUp or was probed by an EvProbe, the failover
	// target of an EvFailover. Empty on single-server (link-scoped)
	// streams.
	Backend string
	// From names the backend a failed exchange was attributed to — the
	// backend an EvFailover moved away from. Empty on other kinds.
	From string
	// Radio is a snapshot of the link's counters, carried by EvInvoke
	// and the link-touching events (retries, probes, breaker
	// transitions, fallbacks) so sinks can observe outage behaviour
	// without reaching into the client.
	Radio radio.Telemetry
}

// EventSink consumes client events. Sinks run synchronously on the
// simulation goroutine and must not retain the event's Method beyond
// the client's lifetime.
type EventSink interface {
	Emit(Event)
}

// Sinks fans events out to every attached sink.
type Sinks struct {
	sinks []EventSink
}

// Attach adds a sink to the fan-out.
func (s *Sinks) Attach(sink EventSink) { s.sinks = append(s.sinks, sink) }

// Emit delivers the event to every attached sink.
func (s *Sinks) Emit(e Event) {
	for _, sink := range s.sinks {
		sink.Emit(e)
	}
}

// Stats accumulates the counters the experiments consume. Every
// client has one attached from construction, at Client.Stats.
type Stats struct {
	// ModeCounts[mode] counts invocations decided into each mode.
	ModeCounts [NumModes]int
	// Fallbacks counts connection-loss fallbacks (execution and
	// compilation-download ones alike).
	Fallbacks int
	// LocalCompiles and RemoteCompiles count method bodies obtained by
	// running the local JIT vs. downloading from the server.
	LocalCompiles  int
	RemoteCompiles int
	// Evictions counts bodies unlinked by the code cache's LRU policy.
	Evictions int
	// MemoHits counts invocations replayed from the memo.
	MemoHits int
	// Retries counts re-attempted remote exchanges after losses.
	Retries int
	// Sheds counts remote exchanges the server rejected with a busy
	// error (admission queue full); each shed invocation fell back to
	// local execution.
	Sheds int
	// Probes counts half-open circuit-breaker probes; LinkDowns and
	// LinkUps count breaker open/close transitions (link-scoped and
	// per-backend alike).
	Probes    int
	LinkDowns int
	LinkUps   int
	// Failovers counts in-flight invocations re-placed onto a surviving
	// backend after a loss attributed to another backend.
	Failovers int
	// ShedsBy, LinkDownsBy and LinkUpsBy split the corresponding
	// counters by backend, for events that carried an attribution; they
	// stay nil on single-server streams, so pool-wide and per-backend
	// outages are distinguishable.
	ShedsBy     map[string]int
	LinkDownsBy map[string]int
	LinkUpsBy   map[string]int
	// Radio is the link-telemetry snapshot carried by the most recent
	// radio-touching event (losses, retransmits, stalls, exchanged
	// bytes). A trailing failed exchange can still leave it behind the
	// link when the invocation itself errors out — drivers call
	// Client.SyncStats at end of run to fold in the final counters.
	Radio radio.Telemetry
}

// Emit implements EventSink.
func (s *Stats) Emit(e Event) {
	// Link counters are monotonic and events arrive in simulation
	// order, so any event carrying a non-empty snapshot is at least as
	// fresh as the one held.
	if e.Radio.Exchanges > 0 {
		s.Radio = e.Radio
	}
	switch e.Kind {
	case EvInvoke:
		s.ModeCounts[e.Mode]++
	case EvRetry:
		s.Retries++
	case EvFailover:
		s.Failovers++
	case EvShed:
		s.Sheds++
		incBy(&s.ShedsBy, e.Backend)
	case EvProbe:
		s.Probes++
	case EvLinkDown:
		s.LinkDowns++
		incBy(&s.LinkDownsBy, e.Backend)
	case EvLinkUp:
		s.LinkUps++
		incBy(&s.LinkUpsBy, e.Backend)
	case EvFallback:
		s.Fallbacks++
	case EvLocalCompile:
		s.LocalCompiles++
	case EvRemoteCompile:
		s.RemoteCompiles++
	case EvEvict:
		s.Evictions++
	case EvMemoHit:
		s.MemoHits++
	}
}

// incBy bumps a lazily allocated per-backend split counter; events
// without an attribution leave the split untouched.
func incBy(m *map[string]int, backend string) {
	if backend == "" {
		return
	}
	if *m == nil {
		*m = map[string]int{}
	}
	(*m)[backend]++
}

// InvokeRecord describes one potential-method invocation, as recorded
// by a Trace sink.
type InvokeRecord struct {
	Method   string
	Mode     Mode
	Size     float64
	Energy   energy.Joules
	Time     energy.Seconds
	FellBack bool
}

// Trace records every invocation event; attach one with
// Client.EnableTrace (or Sinks.Attach) when a per-invocation log is
// wanted.
type Trace struct {
	Records []InvokeRecord
}

// Emit implements EventSink.
func (t *Trace) Emit(e Event) {
	if e.Kind != EvInvoke {
		return
	}
	t.Records = append(t.Records, InvokeRecord{
		Method:   e.Method.QName(),
		Mode:     e.Mode,
		Size:     e.Size,
		Energy:   e.Energy,
		Time:     e.Time,
		FellBack: e.FellBack,
	})
}
