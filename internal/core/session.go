package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
)

// The session layer multiplexes many clients onto one Server. Each
// client holds a Session (identified by the session ID carried in the
// wire protocol) with its own serialization cache; the SessionServer
// in front of them owns admission control — a bounded worker pool plus
// a bounded waiting queue — so a fleet of handsets contending for
// offload service degrades by shedding requests with a typed busy
// error instead of queueing without bound. Clients price that error
// into their offload decision (see Client.RemoteEnergy), so an
// overloaded server observably pushes work back to local execution.

// ErrServerBusy is the sentinel for admission-control rejections: the
// server's worker pool and waiting queue were full. Transports wrap it
// (see BusyError), so callers must test with errors.Is. A busy
// rejection is not a connection loss — the link and the connection are
// fine — so it charges no timeout listen, trips no breaker, and is
// never retried within the invocation; the client falls back locally
// and inflates its busy-rate estimate instead.
var ErrServerBusy = errors.New("core: server busy")

// BusyError is the typed admission rejection. QueueDepth is the length
// of the waiting queue at rejection time, so clients (and metrics) can
// see how overloaded the server was; Backend names the rejecting
// backend when the client talks to a pool ("" for a single anonymous
// server), so the client inflates the right busy-rate EWMA. It unwraps
// to ErrServerBusy.
type BusyError struct {
	QueueDepth int
	Backend    string
}

func (e *BusyError) Error() string {
	if e.Backend != "" {
		return fmt.Sprintf("core: server %s busy (queue depth %d)", e.Backend, e.QueueDepth)
	}
	return fmt.Sprintf("core: server busy (queue depth %d)", e.QueueDepth)
}

// Unwrap makes errors.Is(err, ErrServerBusy) hold.
func (e *BusyError) Unwrap() error { return ErrServerBusy }

// SessionConfig shapes a SessionServer's admission control.
type SessionConfig struct {
	// Workers bounds concurrently executing requests; 0 means
	// DefaultWorkers.
	Workers int
	// QueueCap bounds requests waiting for a worker across all
	// sessions; a request arriving with the queue full is shed with a
	// BusyError. 0 means DefaultQueueCap; negative means no waiting at
	// all (every request beyond the workers is shed).
	QueueCap int
	// Backend names this server within a pool; "" for a standalone
	// server. Carried on busy rejections (BusyError.Backend) and wire
	// busy frames so clients attribute sheds to the right backend.
	Backend string
}

// The admission defaults: a small worker pool, matching the paper's
// single resource-rich server, with a short queue in front of it.
const (
	DefaultWorkers  = 4
	DefaultQueueCap = 16
)

func (cfg SessionConfig) withDefaults() SessionConfig {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.QueueCap < 0 {
		cfg.QueueCap = 0
	}
	return cfg
}

// SessionServerStats is a snapshot of a SessionServer's admission
// counters.
type SessionServerStats struct {
	// Sessions is the number of sessions the server has opened,
	// including sessions since retired by Close.
	Sessions int
	// Served counts requests that obtained a worker; Shed counts
	// admission rejections; CacheHits counts requests answered from a
	// session's serialization cache.
	Served    int
	Shed      int
	CacheHits int
	// MaxQueueDepth is the high-water mark of the waiting queue.
	MaxQueueDepth int
}

// SessionServer fronts a Server with per-client sessions and admission
// control. It is safe for concurrent use.
type SessionServer struct {
	srv *Server
	cfg SessionConfig

	mu       sync.Mutex
	nextID   uint32
	sessions map[uint32]*Session
	byClient map[string]uint32

	// Admission state: running counts requests holding a worker;
	// waiters holds the per-session FIFO queues of blocked requests,
	// and rr the round-robin rotation of session IDs with waiters.
	running  int
	waiting  int
	waiters  map[uint32][]chan struct{}
	rr       []uint32
	served   int
	shed     int
	maxDepth int

	// Retired-session residue: city-scale fleets close each session as
	// its client finishes (see Close), so the live maps stay small while
	// the aggregate counters keep the whole run's history.
	closed       int
	retainedHits int
}

// NewSessionServer wraps a Server with sessions and admission control.
func NewSessionServer(s *Server, cfg SessionConfig) *SessionServer {
	return &SessionServer{
		srv:      s,
		cfg:      cfg.withDefaults(),
		sessions: map[uint32]*Session{},
		byClient: map[string]uint32{},
		waiters:  map[uint32][]chan struct{}{},
	}
}

// Server returns the wrapped Server.
func (t *SessionServer) Server() *Server { return t.srv }

// Backend returns the server's pool name ("" when standalone).
func (t *SessionServer) Backend() string { return t.cfg.Backend }

// QueueDepth is the current number of requests waiting for a worker —
// the load signal the wire protocol advertises on hello and busy
// frames for power-of-two-choices placement.
func (t *SessionServer) QueueDepth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.waiting
}

// Open returns the client's session, creating it on first use.
// Sessions are keyed by client ID, so a client that reconnects (the
// TCP transport re-dials after a broken connection) reattaches to its
// session — and keeps its serialization cache — instead of leaking a
// new one per connection.
func (t *SessionServer) Open(clientID string) *Session {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.byClient[clientID]; ok {
		return t.sessions[id]
	}
	t.nextID++
	s := &Session{t: t, ID: t.nextID, ClientID: clientID}
	t.sessions[s.ID] = s
	t.byClient[clientID] = s.ID
	return s
}

// Close retires the client's session: it is removed from the live
// maps (so a fleet of 100k finished handsets does not stay resident)
// and its cache-hit count folds into the server's retained aggregate,
// which Stats keeps reporting. Closing an unknown client is a no-op;
// a later Open for the same client starts a fresh session with a cold
// cache.
func (t *SessionServer) Close(clientID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := t.byClient[clientID]
	if !ok {
		return
	}
	s := t.sessions[id]
	delete(t.sessions, id)
	delete(t.byClient, clientID)
	t.closed++
	t.retainedHits += s.cacheHitCount()
}

// Lookup returns the session with the given ID, or nil.
func (t *SessionServer) Lookup(id uint32) *Session {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sessions[id]
}

// Stats snapshots the admission counters.
func (t *SessionServer) Stats() SessionServerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := SessionServerStats{
		Sessions:      len(t.sessions) + t.closed,
		Served:        t.served,
		Shed:          t.shed,
		CacheHits:     t.retainedHits,
		MaxQueueDepth: t.maxDepth,
	}
	for _, s := range t.sessions {
		st.CacheHits += s.cacheHitCount()
	}
	return st
}

// acquire admits one request for the session: it grants a worker
// immediately when one is free and nobody queues ahead, waits in the
// session's FIFO queue otherwise, and sheds with a BusyError when the
// queue is full. Waiting respects ctx.
func (t *SessionServer) acquire(ctx context.Context, sid uint32) error {
	t.mu.Lock()
	if t.running < t.cfg.Workers && t.waiting == 0 {
		t.running++
		t.mu.Unlock()
		return nil
	}
	if t.waiting >= t.cfg.QueueCap {
		depth := t.waiting
		t.shed++
		t.mu.Unlock()
		return &BusyError{QueueDepth: depth, Backend: t.cfg.Backend}
	}
	ch := make(chan struct{})
	t.waiters[sid] = append(t.waiters[sid], ch)
	if len(t.waiters[sid]) == 1 {
		t.rr = append(t.rr, sid)
	}
	t.waiting++
	if t.waiting > t.maxDepth {
		t.maxDepth = t.waiting
	}
	t.mu.Unlock()

	if ctx == nil {
		<-ch
		return nil
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		t.mu.Lock()
		q := t.waiters[sid]
		for i, w := range q {
			if w == ch {
				t.waiters[sid] = append(q[:i:i], q[i+1:]...)
				t.waiting--
				if len(t.waiters[sid]) == 0 {
					t.dropRR(sid)
				}
				t.mu.Unlock()
				return ctx.Err()
			}
		}
		// The grant raced the cancellation: the worker was already
		// handed over, so pass it on.
		t.mu.Unlock()
		t.release()
		return ctx.Err()
	}
}

// release returns a worker, handing it round-robin to the next waiting
// session's oldest request (fairness across sessions: one grant per
// session per rotation, however deep its queue).
func (t *SessionServer) release() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.rr) > 0 {
		sid := t.rr[0]
		t.rr = t.rr[1:]
		q := t.waiters[sid]
		ch := q[0]
		if len(q) == 1 {
			delete(t.waiters, sid)
		} else {
			t.waiters[sid] = q[1:]
			t.rr = append(t.rr, sid)
		}
		t.waiting--
		close(ch) // the worker transfers; running is unchanged
		return
	}
	t.running--
}

// dropRR removes sid from the round-robin rotation (its queue emptied
// through cancellation). Callers hold t.mu.
func (t *SessionServer) dropRR(sid uint32) {
	delete(t.waiters, sid)
	for i, id := range t.rr {
		if id == sid {
			t.rr = append(t.rr[:i:i], t.rr[i+1:]...)
			return
		}
	}
}

// Per-session serialization-cache bounds: identical offloads (same
// method, same serialized arguments) are frequent in the workload mix,
// so a small per-session result cache saves the server re-executing
// them; the bounds keep a fleet of sessions from hoarding memory.
const (
	sessionCacheMaxEntries = 64
	sessionCacheMaxBytes   = 1 << 20
)

type cachedResult struct {
	key string
	res []byte
}

// Session is one client's server-side state: its identity, its
// serialization cache, and its request counters. It implements Remote,
// so a client can talk to its session directly in process.
type Session struct {
	t        *SessionServer
	ID       uint32
	ClientID string

	mu         sync.Mutex
	cache      []cachedResult
	cacheBytes int
	requests   int
	cacheHits  int
}

// SessionStats snapshots one session's counters.
type SessionStats struct {
	Requests  int
	CacheHits int
}

// Stats snapshots the session's counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStats{Requests: s.requests, CacheHits: s.cacheHits}
}

func (s *Session) cacheHitCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cacheHits
}

// Execute implements Remote: admission control first, then the
// session-cached execution. A full queue sheds the request with a
// BusyError before any server work happens.
func (s *Session) Execute(ctx context.Context, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, error) {

	if err := s.t.acquire(ctx, s.ID); err != nil {
		return nil, 0, false, err
	}
	defer s.t.release()
	s.t.mu.Lock()
	s.t.served++
	s.t.mu.Unlock()
	return s.ExecuteDirect(ctx, clientID, class, method, argBytes, reqTime, estEnd)
}

// ExecuteDirect runs the request without admission control — the
// session cache plus the wrapped Server. Simulation harnesses that
// model admission in virtual time (internal/fleet) call this after
// their own admission decision; the TCP path always goes through
// Execute.
func (s *Session) ExecuteDirect(ctx context.Context, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, error) {

	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, 0, false, err
		}
	}
	key := class + "\x00" + method + "\x00" + string(argBytes)
	s.mu.Lock()
	s.requests++
	for i := range s.cache {
		if s.cache[i].key == key {
			res := s.cache[i].res
			s.cacheHits++
			s.mu.Unlock()
			// A cache hit skips execution: only the dispatch overhead
			// is spent, and the mobile status table still advances.
			servTime := s.t.srv.RequestOverhead
			queued := s.t.srv.noteRequest(clientID, reqTime, estEnd, servTime, res)
			return res, servTime, queued, nil
		}
	}
	s.mu.Unlock()

	res, servTime, queued, err := s.t.srv.Execute(ctx, clientID, class, method, argBytes, reqTime, estEnd)
	if err != nil {
		return nil, 0, false, err
	}
	s.mu.Lock()
	s.cache = append(s.cache, cachedResult{key: key, res: res})
	s.cacheBytes += len(key) + len(res)
	for (len(s.cache) > sessionCacheMaxEntries || s.cacheBytes > sessionCacheMaxBytes) && len(s.cache) > 0 {
		old := s.cache[0]
		s.cache = s.cache[1:]
		s.cacheBytes -= len(old.key) + len(old.res)
	}
	s.mu.Unlock()
	return res, servTime, queued, nil
}

// WarmFrom copies the other session's serialization-cache entries into
// s (skipping keys s already holds), respecting s's cache bounds, and
// returns how many entries were copied. This is placement-aware warmup
// after failover: when a client's home backend dies and its work
// re-homes, the surviving backend pre-loads the client's hot results
// from the dead backend's session so re-homed repeats answer from
// cache instead of re-paying full execution.
func (s *Session) WarmFrom(o *Session) int {
	if o == nil || o == s {
		return 0
	}
	o.mu.Lock()
	entries := append([]cachedResult(nil), o.cache...)
	o.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	have := make(map[string]bool, len(s.cache))
	for i := range s.cache {
		have[s.cache[i].key] = true
	}
	copied := 0
	for _, ent := range entries {
		if have[ent.key] {
			continue
		}
		s.cache = append(s.cache, ent)
		s.cacheBytes += len(ent.key) + len(ent.res)
		have[ent.key] = true
		copied++
	}
	for (len(s.cache) > sessionCacheMaxEntries || s.cacheBytes > sessionCacheMaxBytes) && len(s.cache) > 0 {
		old := s.cache[0]
		s.cache = s.cache[1:]
		s.cacheBytes -= len(old.key) + len(old.res)
	}
	return copied
}

// CompiledBody implements Remote: body downloads are control-plane
// traffic served from the Server's shared body cache, not subject to
// execution admission.
func (s *Session) CompiledBody(ctx context.Context, qname string, level jit.Level) (*isa.Code, int, error) {
	return s.t.srv.CompiledBody(ctx, qname, level)
}

var _ Remote = (*Session)(nil)
