package core

import (
	"greenvm/internal/energy"
)

// Memo caches the outcome of deterministic executions so that
// scenario harnesses replaying hundreds of identical invocations
// (Fig 7 runs each application 300 times) do not re-simulate them.
// A memoized local execution re-applies the exact energy/time delta
// the first simulation charged; a memoized remote execution re-prices
// the exchange from recorded byte counts and server time, so channel-
// dependent transmit energy still varies run to run.
//
// Replay returns a zero result slot: it is only safe when the caller
// does not consume results (the experiment drivers discard them).
type Memo struct {
	local  map[memoKey]energy.Delta
	remote map[memoKey]remoteEntry
}

type memoKey struct {
	method   string
	mode     Mode
	inputKey uint64
}

type remoteEntry struct {
	txBytes    int
	rxBytes    int
	servTime   energy.Seconds
	deserDelta energy.Delta
}

// NewMemo returns an empty execution cache.
func NewMemo() *Memo {
	return &Memo{
		local:  map[memoKey]energy.Delta{},
		remote: map[memoKey]remoteEntry{},
	}
}

// Hits and entries, for harness telemetry.
func (m *Memo) Size() int { return len(m.local) + len(m.remote) }
