package core

import (
	"context"

	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// startTCPServer runs a Server behind a loopback listener.
func startTCPServer(t *testing.T, s *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l, s) //nolint:errcheck // returns when the listener closes
	return l.Addr().String()
}

func TestTCPRemoteExecution(t *testing.T) {
	p := testProgram(t)
	addr := startTCPServer(t, NewServer(p))
	remote, err := DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	c := New(ClientConfig{ID: "tcp-client", Prog: p, Server: remote, Channel: radio.Fixed{Cls: radio.Class4}, Strategy: StrategyR, Seed: 7})
	pr := newProfiler(p)
	prof, err := pr.ProfileTarget(workTarget())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(workTarget(), prof); err != nil {
		t.Fatal(err)
	}

	res, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(200)})
	if err != nil {
		t.Fatal(err)
	}
	// Reference result.
	v2 := vm.New(p, energy.MicroSPARCIIep())
	want, _ := v2.InvokeByName("App", "work", []vm.Slot{vm.IntSlot(200)})
	if res.I != want.I {
		t.Errorf("TCP remote result %d, want %d", res.I, want.I)
	}
	if c.Stats.ModeCounts[ModeRemote] != 1 {
		t.Errorf("mode counts %v", c.Stats.ModeCounts)
	}
	if c.VM.Acct.Component(energy.CompRadioTx) <= 0 {
		t.Error("communication energy should still be charged over TCP")
	}
}

func TestTCPRemoteRefResult(t *testing.T) {
	p := testProgram(t)
	addr := startTCPServer(t, NewServer(p))
	remote, err := DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	c := New(ClientConfig{ID: "tcp-client", Prog: p, Server: remote, Channel: radio.Fixed{Cls: radio.Class4}, Strategy: StrategyR, Seed: 7})
	pr := newProfiler(p)
	tg := vecsumTarget()
	prof, err := pr.ProfileTarget(tg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(tg, prof); err != nil {
		t.Fatal(err)
	}
	args, err := tg.MakeArgs(c.VM, 64, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "App", "vecsum", args); err != nil {
		t.Fatal(err)
	}
}

func TestTCPCompiledBodyMatchesInProcess(t *testing.T) {
	p := testProgram(t)
	server := NewServer(p)
	addr := startTCPServer(t, server)
	remote, err := DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	got, gotSize, err := remote.CompiledBody(context.Background(), "App.helper", jit.Level2)
	if err != nil {
		t.Fatal(err)
	}
	want, wantSize, err := server.CompiledBody(context.Background(), "App.helper", jit.Level2)
	if err != nil {
		t.Fatal(err)
	}
	if gotSize != wantSize {
		t.Errorf("size %d != %d", gotSize, wantSize)
	}
	if len(got.Instrs) != len(want.Instrs) {
		t.Fatalf("instr count %d != %d", len(got.Instrs), len(want.Instrs))
	}
	for i := range got.Instrs {
		if got.Instrs[i] != want.Instrs[i] {
			t.Errorf("instr %d: %v != %v", i, got.Instrs[i], want.Instrs[i])
		}
	}
	if got.FrameWords != want.FrameWords || got.OptLevel != want.OptLevel {
		t.Error("metadata lost on the wire")
	}
}

func TestTCPErrorsPropagate(t *testing.T) {
	p := testProgram(t)
	addr := startTCPServer(t, NewServer(p))
	remote, err := DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	if _, _, _, err := remote.Execute(context.Background(), "c", "No", "such", nil, 0, 0); err == nil ||
		!strings.Contains(err.Error(), "no method") {
		t.Errorf("exec error = %v", err)
	}
	// The connection must remain usable after a server-side error.
	if _, _, err := remote.CompiledBody(context.Background(), "App.helper", jit.Level1); err != nil {
		t.Errorf("connection broken after error: %v", err)
	}
	if _, _, err := remote.CompiledBody(context.Background(), "No.Such", jit.Level1); err == nil {
		t.Error("unknown method should error")
	}
}

func TestEncodeDecodeCodeRoundtrip(t *testing.T) {
	p := testProgram(t)
	m := p.FindMethod("App", "work")
	code, _, err := jit.Compile(p, m, jit.Level3)
	if err != nil {
		t.Fatal(err)
	}
	enc := isa.EncodeCode(code)
	dec, err := isa.DecodeCode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Name != code.Name || dec.FrameWords != code.FrameWords || dec.OptLevel != code.OptLevel {
		t.Error("metadata changed")
	}
	for i := range code.Instrs {
		if dec.Instrs[i] != code.Instrs[i] {
			t.Fatalf("instr %d changed", i)
		}
	}
	// Corruption is detected.
	if _, err := isa.DecodeCode(enc[:len(enc)-2]); err == nil {
		t.Error("truncated code should fail to decode")
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	if _, err := isa.DecodeCode(bad); err == nil {
		t.Error("bad magic should fail to decode")
	}
}

// --- Transport failure handling ---

// rawRoundTrip writes one frame over a raw connection and decodes the
// response's status byte and message.
func rawRoundTrip(t *testing.T, conn net.Conn, payload []byte) (byte, string) {
	t.Helper()
	if err := writeFrame(conn, payload); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	m := &wire{buf: resp}
	status := m.rdU8()
	msg := ""
	if status == statusFail {
		msg = m.rdStr()
	}
	return status, msg
}

// TestMalformedFramesGetFailureFrames: every malformed request is
// answered with a clean failure frame, and the connection stays
// usable afterwards.
func TestMalformedFramesGetFailureFrames(t *testing.T) {
	p := testProgram(t)
	addr := startTCPServer(t, NewServer(p))

	valid := &wire{}
	valid.u8(opCompile).u32(0).str("App.helper").u8(byte(jit.Level1))

	cases := []struct {
		name    string
		payload []byte
		wantMsg string
	}{
		{"empty frame", nil, "unknown op"},
		{"unknown op", []byte{0xEE}, "unknown op"},
		{"truncated exec session", []byte{opExec, 0, 0}, "truncated"},
		{"truncated exec strings", []byte{opExec, 0, 0, 0, 0, 0, 5, 'a'}, "truncated"},
		{"truncated compile", []byte{opCompile}, "truncated"},
		{"truncated hello", []byte{opHello, 0, 9}, "truncated"},
		{"exec huge bytes length", append([]byte{opExec, 0, 0, 0, 0, 0, 1, 'c', 0, 1, 'C', 0, 1, 'm'},
			0xFF, 0xFF, 0xFF, 0xFF), "truncated"},
		{"exec missing times", func() []byte {
			m := &wire{}
			m.u8(opExec).u32(0).str("c").str("App").str("work").bytes(nil)
			return m.buf
		}(), "truncated"},
		{"exec unknown session", func() []byte {
			m := &wire{}
			m.u8(opExec).u32(999).str("c").str("App").str("work").bytes(nil).f64(0).f64(0)
			return m.buf
		}(), "unknown session"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			status, msg := rawRoundTrip(t, conn, tc.payload)
			if status != statusFail {
				t.Fatalf("status = %d, want failure frame", status)
			}
			if !strings.Contains(msg, tc.wantMsg) {
				t.Errorf("failure %q does not mention %q", msg, tc.wantMsg)
			}
			// The connection survives the bad frame.
			if status, _ := rawRoundTrip(t, conn, valid.buf); status != statusOK {
				t.Error("connection unusable after a malformed frame")
			}
		})
	}
}

// TestOversizedInboundFrameDrained: a frame claiming more than
// maxFrame bytes is drained and answered with a failure frame instead
// of killing the connection.
func TestOversizedInboundFrameDrained(t *testing.T) {
	p := testProgram(t)
	addr := startTCPServer(t, NewServer(p))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	n := int64(maxFrame) + 1
	var hdr [5]byte
	hdr[0] = protocolVersion
	binary.BigEndian.PutUint32(hdr[1:], uint32(n))
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// Stream the oversized payload; the reply may already be in
	// flight, so write concurrently with the read.
	writeErr := make(chan error, 1)
	go func() {
		_, err := io.CopyN(conn, zeroReader{}, n)
		writeErr <- err
	}()
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-writeErr; err != nil {
		t.Fatal(err)
	}
	m := &wire{buf: resp}
	if m.rdU8() != statusFail {
		t.Fatal("oversized frame should yield a failure frame")
	}
	if msg := m.rdStr(); !strings.Contains(msg, "exceeds") {
		t.Errorf("failure %q does not mention the size limit", msg)
	}
	// The connection survives.
	valid := &wire{}
	valid.u8(opCompile).u32(0).str("App.helper").u8(byte(jit.Level1))
	if status, _ := rawRoundTrip(t, conn, valid.buf); status != statusOK {
		t.Error("connection unusable after an oversized frame")
	}
}

type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

// TestOversizedRequestRejectedSendSide: the client refuses to send a
// frame over maxFrame before anything hits the wire; the error is a
// protocol error, not a connection loss, and the connection stays
// usable.
func TestOversizedRequestRejectedSendSide(t *testing.T) {
	p := testProgram(t)
	addr := startTCPServer(t, NewServer(p))
	remote, err := DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	big := make([]byte, maxFrame+1)
	_, _, _, err = remote.Execute(context.Background(), "c", "App", "work", big, 0, 0)
	var fse *FrameSizeError
	if !errors.As(err, &fse) {
		t.Fatalf("error %v, want FrameSizeError", err)
	}
	if !errors.Is(err, ErrProtocol) {
		t.Error("FrameSizeError should unwrap to ErrProtocol")
	}
	if errors.Is(err, radio.ErrConnectionLost) {
		t.Error("an oversized request is not a connection loss")
	}
	if _, _, err := remote.CompiledBody(context.Background(), "App.helper", jit.Level1); err != nil {
		t.Errorf("connection unusable after a rejected oversized request: %v", err)
	}
}

// TestMidCallResetReconnects: a connection reset mid-call is
// classified as radio.ErrConnectionLost and the next call reconnects
// transparently.
func TestMidCallResetReconnects(t *testing.T) {
	p := testProgram(t)
	s := NewServer(p)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		// First connection: answer the dial-time hello probe, then
		// swallow the next request and slam the door.
		conn, err := l.Accept()
		if err != nil {
			return
		}
		readFrame(conn)                                     //nolint:errcheck
		writeFrame(conn, (&wire{}).u8(statusOK).u32(0).buf) //nolint:errcheck
		readFrame(conn)                                     //nolint:errcheck
		conn.Close()
		// Later connections reach the real server.
		for {
			c2, err := l.Accept()
			if err != nil {
				return
			}
			go NewTCPServer(s).serveConn(c2)
		}
	}()

	remote, err := DialServer(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	_, _, err = remote.CompiledBody(context.Background(), "App.helper", jit.Level1)
	if !errors.Is(err, radio.ErrConnectionLost) {
		t.Fatalf("mid-call reset classified as %v, want connection loss", err)
	}
	if _, _, err := remote.CompiledBody(context.Background(), "App.helper", jit.Level1); err != nil {
		t.Fatalf("reconnect after reset failed: %v", err)
	}
}

// TestRPCDeadlineOnStalledServer: a server that accepts but never
// responds trips the per-RPC deadline, classified as a loss.
func TestRPCDeadlineOnStalledServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				// Answer the dial-time hello probe, then stall: read
				// forever, answer never.
				readFrame(conn)                                     //nolint:errcheck
				writeFrame(conn, (&wire{}).u8(statusOK).u32(0).buf) //nolint:errcheck
				io.Copy(io.Discard, conn)                           //nolint:errcheck
			}(conn)
		}
	}()

	remote, err := DialServer(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	remote.RPCTimeout = 100 * time.Millisecond
	start := time.Now()
	_, _, err = remote.CompiledBody(context.Background(), "App.helper", jit.Level1)
	if !errors.Is(err, radio.ErrConnectionLost) {
		t.Fatalf("stalled RPC classified as %v, want connection loss", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline took %v to fire", elapsed)
	}
}

// TestTCPServerGracefulShutdown: Close stops the accept loop with
// ErrServerClosed, closes live connections, and drains handlers.
func TestTCPServerGracefulShutdown(t *testing.T) {
	p := testProgram(t)
	ts := NewTCPServer(NewServer(p))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ts.Serve(l) }()

	remote, err := DialServer(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if _, _, err := remote.CompiledBody(context.Background(), "App.helper", jit.Level1); err != nil {
		t.Fatal(err)
	}

	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrServerClosed) {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
	// The live connection was shut: the next call is a loss.
	remote.DialRetries = 0
	remote.DialBackoff = 0
	if _, _, err := remote.CompiledBody(context.Background(), "App.helper", jit.Level1); !errors.Is(err, radio.ErrConnectionLost) {
		t.Errorf("call after shutdown = %v, want connection loss", err)
	}
	// Close is idempotent, and Serve after Close refuses.
	if err := ts.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := ts.Serve(l); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Serve after Close = %v, want ErrServerClosed", err)
	}
}

// TestServerPanicBecomesFailureFrame: a request that panics the
// handler yields a failure frame and the connection survives.
func TestServerPanicBecomesFailureFrame(t *testing.T) {
	req := &wire{}
	req.u8(opExec).u32(0).str("c").str("App").str("work").bytes(nil).f64(0).f64(0)
	resp := safeHandle(context.Background(), req.buf, nil, nopRPCMetrics{}) // nil server: the session open panics
	m := &wire{buf: resp}
	if m.rdU8() != statusFail {
		t.Fatal("panic should produce a failure frame")
	}
	if msg := m.rdStr(); !strings.Contains(msg, "panic") {
		t.Errorf("failure %q does not mention the panic", msg)
	}
}
