package core

import (
	"net"
	"strings"
	"testing"

	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// startTCPServer runs a Server behind a loopback listener.
func startTCPServer(t *testing.T, s *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l, s) //nolint:errcheck // returns when the listener closes
	return l.Addr().String()
}

func TestTCPRemoteExecution(t *testing.T) {
	p := testProgram(t)
	addr := startTCPServer(t, NewServer(p))
	remote, err := DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	c := NewClient("tcp-client", p, remote, radio.Fixed{Cls: radio.Class4}, StrategyR, 7)
	pr := newProfiler(p)
	prof, err := pr.ProfileTarget(workTarget())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(workTarget(), prof); err != nil {
		t.Fatal(err)
	}

	res, err := c.Invoke("App", "work", []vm.Slot{vm.IntSlot(200)})
	if err != nil {
		t.Fatal(err)
	}
	// Reference result.
	v2 := vm.New(p, energy.MicroSPARCIIep())
	want, _ := v2.InvokeByName("App", "work", []vm.Slot{vm.IntSlot(200)})
	if res.I != want.I {
		t.Errorf("TCP remote result %d, want %d", res.I, want.I)
	}
	if c.Stats.ModeCounts[ModeRemote] != 1 {
		t.Errorf("mode counts %v", c.Stats.ModeCounts)
	}
	if c.VM.Acct.Component(energy.CompRadioTx) <= 0 {
		t.Error("communication energy should still be charged over TCP")
	}
}

func TestTCPRemoteRefResult(t *testing.T) {
	p := testProgram(t)
	addr := startTCPServer(t, NewServer(p))
	remote, err := DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	c := NewClient("tcp-client", p, remote, radio.Fixed{Cls: radio.Class4}, StrategyR, 7)
	pr := newProfiler(p)
	tg := vecsumTarget()
	prof, err := pr.ProfileTarget(tg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(tg, prof); err != nil {
		t.Fatal(err)
	}
	args, err := tg.MakeArgs(c.VM, 64, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke("App", "vecsum", args); err != nil {
		t.Fatal(err)
	}
}

func TestTCPCompiledBodyMatchesInProcess(t *testing.T) {
	p := testProgram(t)
	server := NewServer(p)
	addr := startTCPServer(t, server)
	remote, err := DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	got, gotSize, err := remote.CompiledBody("App.helper", jit.Level2)
	if err != nil {
		t.Fatal(err)
	}
	want, wantSize, err := server.CompiledBody("App.helper", jit.Level2)
	if err != nil {
		t.Fatal(err)
	}
	if gotSize != wantSize {
		t.Errorf("size %d != %d", gotSize, wantSize)
	}
	if len(got.Instrs) != len(want.Instrs) {
		t.Fatalf("instr count %d != %d", len(got.Instrs), len(want.Instrs))
	}
	for i := range got.Instrs {
		if got.Instrs[i] != want.Instrs[i] {
			t.Errorf("instr %d: %v != %v", i, got.Instrs[i], want.Instrs[i])
		}
	}
	if got.FrameWords != want.FrameWords || got.OptLevel != want.OptLevel {
		t.Error("metadata lost on the wire")
	}
}

func TestTCPErrorsPropagate(t *testing.T) {
	p := testProgram(t)
	addr := startTCPServer(t, NewServer(p))
	remote, err := DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	if _, _, _, err := remote.Execute("c", "No", "such", nil, 0, 0); err == nil ||
		!strings.Contains(err.Error(), "no method") {
		t.Errorf("exec error = %v", err)
	}
	// The connection must remain usable after a server-side error.
	if _, _, err := remote.CompiledBody("App.helper", jit.Level1); err != nil {
		t.Errorf("connection broken after error: %v", err)
	}
	if _, _, err := remote.CompiledBody("No.Such", jit.Level1); err == nil {
		t.Error("unknown method should error")
	}
}

func TestEncodeDecodeCodeRoundtrip(t *testing.T) {
	p := testProgram(t)
	m := p.FindMethod("App", "work")
	code, _, err := jit.Compile(p, m, jit.Level3)
	if err != nil {
		t.Fatal(err)
	}
	enc := isa.EncodeCode(code)
	dec, err := isa.DecodeCode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Name != code.Name || dec.FrameWords != code.FrameWords || dec.OptLevel != code.OptLevel {
		t.Error("metadata changed")
	}
	for i := range code.Instrs {
		if dec.Instrs[i] != code.Instrs[i] {
			t.Fatalf("instr %d changed", i)
		}
	}
	// Corruption is detected.
	if _, err := isa.DecodeCode(enc[:len(enc)-2]); err == nil {
		t.Error("truncated code should fail to decode")
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	if _, err := isa.DecodeCode(bad); err == nil {
		t.Error("bad magic should fail to decode")
	}
}
