package core

import (
	"fmt"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
)

// FleetProgram is the immutable slice of a client's configuration that
// an entire simulated population can share: the program, the handset
// energy model, the registered offload target with its profile, and
// the precomputed compilation plan for that target. Building one per
// fleet (instead of per client) removes the per-client energy-table
// allocation and the per-client compilePlan walk, which at city scale
// dominates construction cost. Nothing reachable from a FleetProgram
// is mutated after NewFleetProgram returns.
type FleetProgram struct {
	Prog   *bytecode.Program
	Model  *energy.CPUModel
	Target *Target
	Prof   *Profile

	method *bytecode.Method
	plan   []*bytecode.Method
}

// NewFleetProgram validates the target against the program, compiles
// the plan once, and returns the shared state.
func NewFleetProgram(prog *bytecode.Program, t *Target, prof *Profile) (*FleetProgram, error) {
	m := prog.FindMethod(t.Class, t.Method)
	if m == nil {
		return nil, fmt.Errorf("core: no method %s", t.QName())
	}
	if !m.Potential {
		return nil, fmt.Errorf("core: %s is not marked potential", t.QName())
	}
	return &FleetProgram{
		Prog:   prog,
		Model:  energy.MicroSPARCIIep(),
		Target: t,
		Prof:   prof,
		method: m,
		plan:   compilePlan(prog, m),
	}, nil
}

// RegisterShared attaches the fleet program's target to the client
// without recompiling the plan. It is Register with every
// per-population invariant hoisted out of the per-client path.
func (c *Client) RegisterShared(fp *FleetProgram) error {
	if fp.Prog != c.Prog {
		return fmt.Errorf("core: shared program does not match client program")
	}
	c.targets[fp.method] = fp.Target
	c.profiles[fp.method] = fp.Prof
	c.plans[fp.method] = fp.plan
	return nil
}
