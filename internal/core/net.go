package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"

	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
)

// TCP transport: the paper validated its prototype on two SPARC
// workstations, one acting as the server and one as the mobile client.
// Serve exposes a Server over a real socket and DialServer returns a
// core.Remote that a Client can use in place of the in-process server.
// Energy accounting is unchanged — the radio model still prices the
// exchanged byte counts — the transport only moves the execution into
// another process.
//
// Wire format: length-prefixed frames (uint32 big-endian, then
// payload). The first payload byte is the operation; strings are
// uint16-length-prefixed; times are float64 seconds.

// ErrProtocol reports a malformed or unexpected frame.
var ErrProtocol = errors.New("core: protocol error")

const (
	opExec     = 1
	opCompile  = 2
	maxFrame   = 64 << 20
	statusOK   = 0
	statusFail = 1
)

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrProtocol, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// frame builder / reader helpers.

type wire struct {
	buf []byte
	pos int
	err error
}

func (m *wire) u8(v byte) *wire { m.buf = append(m.buf, v); return m }
func (m *wire) str(s string) *wire {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(s)))
	m.buf = append(m.buf, l[:]...)
	m.buf = append(m.buf, s...)
	return m
}
func (m *wire) bytes(b []byte) *wire {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(b)))
	m.buf = append(m.buf, l[:]...)
	m.buf = append(m.buf, b...)
	return m
}
func (m *wire) f64(v float64) *wire {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	m.buf = append(m.buf, b[:]...)
	return m
}

func (m *wire) fail(what string) {
	if m.err == nil {
		m.err = fmt.Errorf("%w: truncated %s", ErrProtocol, what)
	}
}
func (m *wire) rdU8() byte {
	if m.err != nil || m.pos+1 > len(m.buf) {
		m.fail("u8")
		return 0
	}
	v := m.buf[m.pos]
	m.pos++
	return v
}
func (m *wire) rdStr() string {
	if m.err != nil || m.pos+2 > len(m.buf) {
		m.fail("string")
		return ""
	}
	n := int(binary.BigEndian.Uint16(m.buf[m.pos:]))
	m.pos += 2
	if m.pos+n > len(m.buf) {
		m.fail("string body")
		return ""
	}
	s := string(m.buf[m.pos : m.pos+n])
	m.pos += n
	return s
}
func (m *wire) rdBytes() []byte {
	if m.err != nil || m.pos+4 > len(m.buf) {
		m.fail("bytes")
		return nil
	}
	n := int(binary.BigEndian.Uint32(m.buf[m.pos:]))
	m.pos += 4
	if n > maxFrame || m.pos+n > len(m.buf) {
		m.fail("bytes body")
		return nil
	}
	b := m.buf[m.pos : m.pos+n]
	m.pos += n
	return b
}
func (m *wire) rdF64() float64 {
	if m.err != nil || m.pos+8 > len(m.buf) {
		m.fail("f64")
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(m.buf[m.pos:]))
	m.pos += 8
	return v
}

// Serve accepts connections on the listener and dispatches requests to
// the server until the listener is closed. Each connection is handled
// on its own goroutine; the Server serializes execution internally.
func Serve(l net.Listener, s *Server) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, s)
	}
}

func serveConn(conn net.Conn, s *Server) {
	defer conn.Close()
	for {
		req, err := readFrame(conn)
		if err != nil {
			return // peer closed or broken
		}
		resp := handle(req, s)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

func handle(req []byte, s *Server) []byte {
	m := &wire{buf: req}
	op := m.rdU8()
	switch op {
	case opExec:
		clientID := m.rdStr()
		class := m.rdStr()
		method := m.rdStr()
		argBytes := m.rdBytes()
		reqTime := energy.Seconds(m.rdF64())
		estEnd := energy.Seconds(m.rdF64())
		if m.err != nil {
			return failFrame(m.err)
		}
		res, servTime, queued, err := s.Execute(clientID, class, method, argBytes, reqTime, estEnd)
		if err != nil {
			return failFrame(err)
		}
		out := &wire{}
		out.u8(statusOK).bytes(res).f64(float64(servTime))
		if queued {
			out.u8(1)
		} else {
			out.u8(0)
		}
		return out.buf
	case opCompile:
		qname := m.rdStr()
		level := m.rdU8()
		if m.err != nil {
			return failFrame(m.err)
		}
		code, size, err := s.CompiledBody(qname, jit.Level(level))
		if err != nil {
			return failFrame(err)
		}
		out := &wire{}
		out.u8(statusOK).bytes(isa.EncodeCode(code))
		var sz [4]byte
		binary.BigEndian.PutUint32(sz[:], uint32(size))
		out.buf = append(out.buf, sz[:]...)
		return out.buf
	default:
		return failFrame(fmt.Errorf("%w: unknown op %d", ErrProtocol, op))
	}
}

func failFrame(err error) []byte {
	out := &wire{}
	out.u8(statusFail).str(err.Error())
	return out.buf
}

// RemoteServer is a core.Remote backed by a TCP connection to a
// process running Serve.
type RemoteServer struct {
	mu   sync.Mutex
	conn net.Conn
}

// DialServer connects to a remote compilation/execution server.
func DialServer(addr string) (*RemoteServer, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &RemoteServer{conn: conn}, nil
}

// Close shuts the connection.
func (r *RemoteServer) Close() error { return r.conn.Close() }

// roundTrip sends one request frame and reads the response.
func (r *RemoteServer) roundTrip(req []byte) (*wire, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := writeFrame(r.conn, req); err != nil {
		return nil, err
	}
	resp, err := readFrame(r.conn)
	if err != nil {
		return nil, err
	}
	m := &wire{buf: resp}
	if m.rdU8() != statusOK {
		msg := m.rdStr()
		if m.err != nil {
			return nil, m.err
		}
		return nil, fmt.Errorf("core: remote server: %s", msg)
	}
	return m, nil
}

// Execute implements Remote over the wire.
func (r *RemoteServer) Execute(clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, error) {

	req := &wire{}
	req.u8(opExec).str(clientID).str(class).str(method).bytes(argBytes).
		f64(float64(reqTime)).f64(float64(estEnd))
	m, err := r.roundTrip(req.buf)
	if err != nil {
		return nil, 0, false, err
	}
	res := append([]byte(nil), m.rdBytes()...)
	servTime := energy.Seconds(m.rdF64())
	queued := m.rdU8() == 1
	if m.err != nil {
		return nil, 0, false, m.err
	}
	return res, servTime, queued, nil
}

// CompiledBody implements Remote over the wire.
func (r *RemoteServer) CompiledBody(qname string, level jit.Level) (*isa.Code, int, error) {
	req := &wire{}
	req.u8(opCompile).str(qname).u8(byte(level))
	m, err := r.roundTrip(req.buf)
	if err != nil {
		return nil, 0, err
	}
	enc := m.rdBytes()
	if m.err != nil {
		return nil, 0, m.err
	}
	code, err := isa.DecodeCode(enc)
	if err != nil {
		return nil, 0, err
	}
	if m.pos+4 > len(m.buf) {
		return nil, 0, fmt.Errorf("%w: truncated size", ErrProtocol)
	}
	size := int(binary.BigEndian.Uint32(m.buf[m.pos:]))
	return code, size, nil
}

var _ Remote = (*RemoteServer)(nil)
var _ Remote = (*Server)(nil)
