package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
)

// TCP transport: the paper validated its prototype on two SPARC
// workstations, one acting as the server and one as the mobile client.
// Serve exposes a Server over a real socket and DialServer returns a
// core.Remote that a Client can use in place of the in-process server.
// Energy accounting is unchanged — the radio model still prices the
// exchanged byte counts — the transport only moves the execution into
// another process.
//
// Wire format, protocol version 2: each frame is a one-byte protocol
// version, a uint32 big-endian payload length, then the payload. The
// first payload byte is the operation; session IDs are uint32; strings
// are uint16-length-prefixed; times are float64 seconds. A version
// mismatch is rejected at the first frame — the receiver answers with
// a failure frame and closes the connection — because nothing after
// the version byte can be trusted to parse.

// ErrProtocol reports a malformed or unexpected frame.
var ErrProtocol = errors.New("core: protocol error")

// RPCMetrics observes the TCP transport. Both ends accept one —
// TCPServer.Metrics counts served requests, RemoteServer.Metrics
// counts issued ones — so a collector (internal/obs) can export
// request rates, byte volumes, deadline hits and recovered panics
// without the transport importing it. Implementations must be safe
// for concurrent use; a nil metrics field disables collection.
type RPCMetrics interface {
	// ConnOpened and ConnClosed bracket each accepted connection.
	ConnOpened()
	ConnClosed()
	// Request records one completed request: its operation ("exec",
	// "compile", "hello", "unknown"), the frame payload sizes, and
	// whether the response was a failure frame (or, client-side, the
	// trip errored).
	Request(op string, reqBytes, respBytes int, failed bool)
	// PanicRecovered counts handler panics converted to failure frames.
	PanicRecovered()
	// OversizedFrame counts frames refused for exceeding maxFrame.
	OversizedFrame()
	// Reconnect counts client-side re-dials after a broken connection.
	Reconnect()
	// DeadlineHit counts client round trips that missed RPCTimeout.
	DeadlineHit()
}

// nopRPCMetrics lets the transport call metrics unconditionally.
type nopRPCMetrics struct{}

func (nopRPCMetrics) ConnOpened()                    {}
func (nopRPCMetrics) ConnClosed()                    {}
func (nopRPCMetrics) Request(string, int, int, bool) {}
func (nopRPCMetrics) PanicRecovered()                {}
func (nopRPCMetrics) OversizedFrame()                {}
func (nopRPCMetrics) Reconnect()                     {}
func (nopRPCMetrics) DeadlineHit()                   {}

func metricsOrNop(m RPCMetrics) RPCMetrics {
	if m == nil {
		return nopRPCMetrics{}
	}
	return m
}

// opName names a request frame's operation for metric labels.
func opName(req []byte) string {
	if len(req) == 0 {
		return "unknown"
	}
	switch req[0] {
	case opExec:
		return "exec"
	case opCompile:
		return "compile"
	case opHello:
		return "hello"
	default:
		return "unknown"
	}
}

// ErrServerClosed is returned by TCPServer.Serve after Close.
var ErrServerClosed = errors.New("core: server closed")

// protocolVersion is the wire protocol version this build speaks. v1
// had no version byte and no session IDs; v2 prefixes every frame with
// the version, adds the hello handshake, session IDs on exec/compile,
// and the busy status.
const protocolVersion = 2

const (
	opExec    = 1
	opCompile = 2
	// opHello binds the connection's peer to a session: the request
	// carries the client ID, the response the assigned session ID. An
	// empty client ID is a pure version/liveness probe (no session is
	// created; the response carries session ID 0).
	opHello  = 3
	maxFrame = 64 << 20

	statusOK   = 0
	statusFail = 1
	// statusBusy is an admission-control rejection: the response
	// carries the queue depth and decodes into a BusyError. The
	// connection stays usable.
	statusBusy = 2

	// busyFrameBytes is the modelled on-air size of a busy rejection
	// (header plus depth), used by clients to charge its reception.
	busyFrameBytes = 16
)

// FrameSizeError reports a frame larger than the protocol's maxFrame
// limit, on either side of the wire. It unwraps to ErrProtocol.
type FrameSizeError struct {
	Size int64
}

func (e *FrameSizeError) Error() string {
	return fmt.Sprintf("core: frame of %d bytes exceeds the %d-byte limit", e.Size, int64(maxFrame))
}

// Unwrap makes errors.Is(err, ErrProtocol) hold.
func (e *FrameSizeError) Unwrap() error { return ErrProtocol }

// VersionError reports a frame whose protocol version does not match
// this build's. It unwraps to ErrProtocol. The peer that detects the
// mismatch closes the connection after answering: the stream cannot be
// resynchronized across versions.
type VersionError struct {
	Got byte
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("core: protocol version mismatch: peer speaks v%d, this build v%d", e.Got, protocolVersion)
}

// Unwrap makes errors.Is(err, ErrProtocol) hold.
func (e *VersionError) Unwrap() error { return ErrProtocol }

func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		// Refuse before anything hits the wire: an oversized write
		// would desynchronize the stream for both peers.
		return &FrameSizeError{Size: int64(len(payload))}
	}
	var hdr [5]byte
	hdr[0] = protocolVersion
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != protocolVersion {
		return nil, &VersionError{Got: hdr[0]}
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if int64(n) > maxFrame {
		return nil, &FrameSizeError{Size: int64(n)}
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// frame builder / reader helpers.

type wire struct {
	buf []byte
	pos int
	err error
}

func (m *wire) u8(v byte) *wire { m.buf = append(m.buf, v); return m }
func (m *wire) u32(v uint32) *wire {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	m.buf = append(m.buf, b[:]...)
	return m
}
func (m *wire) str(s string) *wire {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(s)))
	m.buf = append(m.buf, l[:]...)
	m.buf = append(m.buf, s...)
	return m
}
func (m *wire) bytes(b []byte) *wire {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(b)))
	m.buf = append(m.buf, l[:]...)
	m.buf = append(m.buf, b...)
	return m
}
func (m *wire) f64(v float64) *wire {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	m.buf = append(m.buf, b[:]...)
	return m
}

func (m *wire) fail(what string) {
	if m.err == nil {
		m.err = fmt.Errorf("%w: truncated %s", ErrProtocol, what)
	}
}
func (m *wire) rdU8() byte {
	if m.err != nil || m.pos+1 > len(m.buf) {
		m.fail("u8")
		return 0
	}
	v := m.buf[m.pos]
	m.pos++
	return v
}
func (m *wire) rdU32() uint32 {
	if m.err != nil || m.pos+4 > len(m.buf) {
		m.fail("u32")
		return 0
	}
	v := binary.BigEndian.Uint32(m.buf[m.pos:])
	m.pos += 4
	return v
}
func (m *wire) rdStr() string {
	if m.err != nil || m.pos+2 > len(m.buf) {
		m.fail("string")
		return ""
	}
	n := int(binary.BigEndian.Uint16(m.buf[m.pos:]))
	m.pos += 2
	if m.pos+n > len(m.buf) {
		m.fail("string body")
		return ""
	}
	s := string(m.buf[m.pos : m.pos+n])
	m.pos += n
	return s
}
func (m *wire) rdBytes() []byte {
	if m.err != nil || m.pos+4 > len(m.buf) {
		m.fail("bytes")
		return nil
	}
	n := int(binary.BigEndian.Uint32(m.buf[m.pos:]))
	m.pos += 4
	if n > maxFrame || m.pos+n > len(m.buf) {
		m.fail("bytes body")
		return nil
	}
	b := m.buf[m.pos : m.pos+n]
	m.pos += n
	return b
}
func (m *wire) rdF64() float64 {
	if m.err != nil || m.pos+8 > len(m.buf) {
		m.fail("f64")
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(m.buf[m.pos:]))
	m.pos += 8
	return v
}

// Serve accepts connections on the listener and dispatches requests to
// the server until the listener is closed. Each connection is handled
// on its own goroutine; the Server serializes execution internally.
// For graceful shutdown, build a TCPServer instead.
func Serve(l net.Listener, s *Server) error {
	return NewTCPServer(s).Serve(l)
}

// TCPServer runs a session-multiplexed Server behind one or more
// listeners and supports graceful shutdown: Close stops accepting,
// cancels in-flight handlers (including requests waiting in the
// admission queue), closes every live connection, and waits for
// handlers to drain.
type TCPServer struct {
	s *SessionServer

	// Metrics, when non-nil, observes served connections and requests.
	// Set it before the first Serve call.
	Metrics RPCMetrics

	baseCtx context.Context
	cancel  context.CancelFunc

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// NewTCPServer wraps a Server for network serving with default
// admission control; use NewSessionTCPServer to configure the worker
// pool and queue.
func NewTCPServer(s *Server) *TCPServer {
	return NewSessionTCPServer(NewSessionServer(s, SessionConfig{}))
}

// NewSessionTCPServer wraps a configured session layer for network
// serving.
func NewSessionTCPServer(s *SessionServer) *TCPServer {
	ctx, cancel := context.WithCancel(context.Background())
	return &TCPServer{
		s:         s,
		baseCtx:   ctx,
		cancel:    cancel,
		listeners: map[net.Listener]struct{}{},
		conns:     map[net.Conn]struct{}{},
	}
}

// Sessions returns the server's session layer (admission stats, open
// sessions).
func (t *TCPServer) Sessions() *SessionServer { return t.s }

// Serve accepts and dispatches until the listener fails or the server
// is closed; after Close it returns ErrServerClosed.
func (t *TCPServer) Serve(l net.Listener) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrServerClosed
	}
	t.listeners[l] = struct{}{}
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.listeners, l)
		t.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if t.closing() {
				return ErrServerClosed
			}
			return err
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		t.conns[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go func() {
			defer t.wg.Done()
			t.serveConn(conn)
			t.mu.Lock()
			delete(t.conns, conn)
			t.mu.Unlock()
		}()
	}
}

func (t *TCPServer) closing() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// Close shuts the server down: in-flight handlers are cancelled, the
// listeners and every live connection are closed, and Close blocks
// until all handler goroutines return. It is idempotent.
func (t *TCPServer) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.wg.Wait()
		return nil
	}
	t.closed = true
	t.cancel()
	for l := range t.listeners {
		l.Close()
	}
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

func (t *TCPServer) serveConn(conn net.Conn) {
	met := metricsOrNop(t.Metrics)
	met.ConnOpened()
	defer met.ConnClosed()
	defer conn.Close()
	for {
		var hdr [5]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return // peer closed or broken
		}
		if hdr[0] != protocolVersion {
			// Handshake rejection: a peer speaking another version
			// cannot be parsed past this byte. Tell it why, then drop
			// the connection.
			writeFrame(conn, failFrame(&VersionError{Got: hdr[0]})) //nolint:errcheck
			return
		}
		n := int64(binary.BigEndian.Uint32(hdr[1:]))
		if n > maxFrame {
			// Drain the oversized payload and answer with a clean
			// failure frame instead of killing the connection: the
			// stream stays in sync and the peer learns why.
			met.OversizedFrame()
			if _, err := io.CopyN(io.Discard, conn, n); err != nil {
				return
			}
			if err := writeFrame(conn, failFrame(&FrameSizeError{Size: n})); err != nil {
				return
			}
			continue
		}
		req := make([]byte, n)
		if _, err := io.ReadFull(conn, req); err != nil {
			return
		}
		resp := safeHandle(t.baseCtx, req, t.s, met)
		met.Request(opName(req), len(req), len(resp), len(resp) > 0 && resp[0] == statusFail)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// safeHandle converts a handler panic into a failure frame so one
// poisoned request cannot take the serving goroutine down.
func safeHandle(ctx context.Context, req []byte, s *SessionServer, met RPCMetrics) (resp []byte) {
	defer func() {
		if r := recover(); r != nil {
			met.PanicRecovered()
			resp = failFrame(fmt.Errorf("core: server panic: %v", r))
		}
	}()
	return handle(ctx, req, s)
}

func handle(ctx context.Context, req []byte, s *SessionServer) []byte {
	m := &wire{buf: req}
	op := m.rdU8()
	switch op {
	case opHello:
		clientID := m.rdStr()
		if m.err != nil {
			return failFrame(m.err)
		}
		// The hello response advertises the server's current admission
		// queue depth and its pool backend name — the load signal
		// power-of-two-choices placement samples. Older v2 peers stop
		// decoding after the session ID; the trailing fields are
		// optional on the read side.
		out := &wire{}
		if clientID == "" {
			// Pure version probe: no session.
			return out.u8(statusOK).u32(0).u32(uint32(s.QueueDepth())).str(s.Backend()).buf
		}
		sess := s.Open(clientID)
		return out.u8(statusOK).u32(sess.ID).u32(uint32(s.QueueDepth())).str(s.Backend()).buf
	case opExec:
		sid := m.rdU32()
		clientID := m.rdStr()
		class := m.rdStr()
		method := m.rdStr()
		argBytes := m.rdBytes()
		reqTime := energy.Seconds(m.rdF64())
		estEnd := energy.Seconds(m.rdF64())
		if m.err != nil {
			return failFrame(m.err)
		}
		var sess *Session
		if sid != 0 {
			if sess = s.Lookup(sid); sess == nil {
				return failFrame(fmt.Errorf("%w: unknown session %d", ErrProtocol, sid))
			}
		} else {
			// No handshake (or the server restarted under the client):
			// reattach by client ID.
			sess = s.Open(clientID)
		}
		res, servTime, queued, err := sess.Execute(ctx, clientID, class, method, argBytes, reqTime, estEnd)
		if err != nil {
			var busy *BusyError
			if errors.As(err, &busy) {
				// The busy frame names the rejecting backend so pooled
				// clients attribute the shed to the right busy EWMA;
				// older v2 peers stop after the depth.
				out := &wire{}
				return out.u8(statusBusy).u32(uint32(busy.QueueDepth)).str(busy.Backend).buf
			}
			return failFrame(err)
		}
		out := &wire{}
		out.u8(statusOK).bytes(res).f64(float64(servTime))
		if queued {
			out.u8(1)
		} else {
			out.u8(0)
		}
		return out.buf
	case opCompile:
		m.rdU32() // session ID: body downloads are session-independent
		qname := m.rdStr()
		level := m.rdU8()
		if m.err != nil {
			return failFrame(m.err)
		}
		code, size, err := s.Server().CompiledBody(ctx, qname, jit.Level(level))
		if err != nil {
			return failFrame(err)
		}
		out := &wire{}
		out.u8(statusOK).bytes(isa.EncodeCode(code))
		var sz [4]byte
		binary.BigEndian.PutUint32(sz[:], uint32(size))
		out.buf = append(out.buf, sz[:]...)
		return out.buf
	default:
		return failFrame(fmt.Errorf("%w: unknown op %d", ErrProtocol, op))
	}
}

func failFrame(err error) []byte {
	out := &wire{}
	out.u8(statusFail).str(err.Error())
	return out.buf
}

// RemoteServer is a core.Remote backed by a TCP connection to a
// process running Serve. On (re)connection it performs the hello
// handshake, verifying the protocol version and binding the client's
// session; the assigned session ID rides on every subsequent request.
// Transport failures — connection resets, missed deadlines,
// desynchronized streams — are classified as radio.ErrConnectionLost
// so the executor's loss machinery (timeout listen, retries, circuit
// breaker) handles them like any other outage; the broken connection
// is dropped and the next call reconnects (and re-binds its session).
// Server-reported failures (a failure frame) leave the connection open
// and propagate as ordinary errors; admission rejections decode into
// BusyError. A cancelled ctx interrupts a blocked round trip and
// surfaces as the context's error.
type RemoteServer struct {
	addr string

	// RPCTimeout bounds each round trip (request write plus response
	// read); zero disables the deadline.
	RPCTimeout time.Duration
	// DialRetries and DialBackoff shape reconnection: up to
	// DialRetries+1 attempts, sleeping DialBackoff doubled per attempt
	// and capped at one second.
	DialRetries int
	DialBackoff time.Duration

	// Metrics, when non-nil, observes issued requests, reconnects and
	// missed deadlines.
	Metrics RPCMetrics

	mu      sync.Mutex
	conn    net.Conn
	sid     uint32
	boundTo string

	// The server's most recent queue-depth advertisement (hello
	// responses and busy frames carry it); advOK is false until the
	// first advertisement decodes.
	advDepth int
	advOK    bool
	// backendID is the server's pool backend name from its hello
	// response ("" for a standalone server).
	backendID string
}

// DialServer connects to a remote compilation/execution server and
// verifies the protocol version with a hello probe. A *VersionError is
// returned when the peer speaks a different protocol version.
func DialServer(addr string) (*RemoteServer, error) {
	r := &RemoteServer{
		addr:        addr,
		RPCTimeout:  10 * time.Second,
		DialRetries: 2,
		DialBackoff: 50 * time.Millisecond,
	}
	conn, err := r.dial()
	if err != nil {
		return nil, err
	}
	r.conn = conn
	probe := &wire{}
	probe.u8(opHello).str("")
	m, err := r.roundTrip(nil, probe.buf)
	if err != nil {
		r.Close()
		var ve *VersionError
		if errors.As(err, &ve) {
			return nil, ve
		}
		return nil, err
	}
	m.rdU32()
	r.noteAdvert(m)
	return r, nil
}

// noteAdvert decodes the optional queue-depth/backend advertisement
// trailing a hello response and caches it. Older v2 peers send
// nothing after the session ID; absence (or a garbled tail) leaves
// the cache untouched.
func (r *RemoteServer) noteAdvert(m *wire) {
	if m.err != nil || m.pos+4 > len(m.buf) {
		return
	}
	depth := int(m.rdU32())
	backend := ""
	if m.pos+2 <= len(m.buf) {
		backend = m.rdStr()
	}
	if m.err != nil {
		return
	}
	r.mu.Lock()
	r.advDepth, r.advOK, r.backendID = depth, true, backend
	r.mu.Unlock()
}

// AdvertisedDepth implements DepthAdvertiser: the queue depth from
// the most recent hello response or busy frame.
func (r *RemoteServer) AdvertisedDepth() (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.advDepth, r.advOK
}

// BackendID is the server's pool backend name from its hello response
// ("" for a standalone server, or before any handshake).
func (r *RemoteServer) BackendID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.backendID
}

// dial attempts the connection with capped exponential backoff.
func (r *RemoteServer) dial() (net.Conn, error) {
	backoff := r.DialBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		conn, err := net.Dial("tcp", r.addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if attempt >= r.DialRetries {
			break
		}
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > time.Second {
				backoff = time.Second
			}
		}
	}
	return nil, fmt.Errorf("%w: dial %s: %v", radio.ErrConnectionLost, r.addr, lastErr)
}

// Close shuts the connection.
func (r *RemoteServer) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn == nil {
		return nil
	}
	err := r.conn.Close()
	r.conn = nil
	return err
}

// session returns the session ID bound to clientID, performing the
// hello handshake when the binding is missing or stale (first use, or
// a reconnect after a broken connection).
func (r *RemoteServer) session(ctx context.Context, clientID string) (uint32, error) {
	r.mu.Lock()
	if r.sid != 0 && r.boundTo == clientID {
		sid := r.sid
		r.mu.Unlock()
		return sid, nil
	}
	r.mu.Unlock()
	req := &wire{}
	req.u8(opHello).str(clientID)
	m, err := r.roundTrip(ctx, req.buf)
	if err != nil {
		return 0, err
	}
	sid := m.rdU32()
	if m.err != nil {
		return 0, m.err
	}
	r.noteAdvert(m)
	r.mu.Lock()
	r.sid, r.boundTo = sid, clientID
	r.mu.Unlock()
	return sid, nil
}

// roundTrip sends one request frame and reads the response,
// reconnecting first if a previous trip broke the connection. ctx, if
// non-nil, cancels a blocked trip.
func (r *RemoteServer) roundTrip(ctx context.Context, req []byte) (*wire, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	met := metricsOrNop(r.Metrics)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			met.Request(opName(req), len(req), 0, true)
			return nil, err
		}
	}
	if r.conn == nil {
		met.Reconnect()
		conn, err := r.dial()
		if err != nil {
			met.Request(opName(req), len(req), 0, true)
			return nil, err
		}
		r.conn = conn
	}
	if r.RPCTimeout > 0 {
		r.conn.SetDeadline(time.Now().Add(r.RPCTimeout)) //nolint:errcheck
	}
	if ctx != nil {
		// A cancelled ctx yanks the deadline so a blocked read or
		// write returns promptly instead of waiting out RPCTimeout.
		conn := r.conn
		stop := context.AfterFunc(ctx, func() {
			conn.SetDeadline(time.Unix(1, 0)) //nolint:errcheck
		})
		defer stop()
		if d, ok := ctx.Deadline(); ok {
			if r.RPCTimeout <= 0 || d.Before(time.Now().Add(r.RPCTimeout)) {
				r.conn.SetDeadline(d) //nolint:errcheck
			}
		}
	}
	if err := writeFrame(r.conn, req); err != nil {
		if errors.Is(err, ErrProtocol) {
			// Oversized request: nothing hit the wire, the connection
			// is still good.
			met.Request(opName(req), len(req), 0, true)
			return nil, err
		}
		met.Request(opName(req), len(req), 0, true)
		return nil, r.lost(ctx, "send", err)
	}
	resp, err := readFrame(r.conn)
	if err != nil {
		met.Request(opName(req), len(req), 0, true)
		var ve *VersionError
		if errors.As(err, &ve) {
			// The peer speaks another protocol version; surface that
			// as-is (retrying cannot help) and drop the connection.
			r.conn.Close()
			r.conn, r.sid = nil, 0
			return nil, ve
		}
		// Either the transport broke or the stream is out of sync
		// (oversized response header); both poison the connection.
		return nil, r.lost(ctx, "receive", err)
	}
	if r.RPCTimeout > 0 {
		r.conn.SetDeadline(time.Time{}) //nolint:errcheck
	}
	m := &wire{buf: resp}
	switch m.rdU8() {
	case statusOK:
		met.Request(opName(req), len(req), len(resp), false)
		return m, nil
	case statusBusy:
		depth := int(m.rdU32())
		backend := ""
		if m.err == nil && m.pos+2 <= len(m.buf) {
			// Optional tail: the rejecting backend's name (older v2
			// peers omit it).
			backend = m.rdStr()
		}
		met.Request(opName(req), len(req), len(resp), true)
		if m.err != nil {
			return nil, r.lost(ctx, "decode", m.err)
		}
		// The server shed the request; the connection stays good. The
		// rejection depth is also the freshest load advertisement.
		r.advDepth, r.advOK = depth, true
		return nil, &BusyError{QueueDepth: depth, Backend: backend}
	default:
		msg := m.rdStr()
		met.Request(opName(req), len(req), len(resp), true)
		if m.err != nil {
			return nil, r.lost(ctx, "decode", m.err)
		}
		return nil, fmt.Errorf("core: remote server: %s", msg)
	}
}

// lost drops the broken connection (the next call reconnects and
// re-binds the session) and classifies the transport error: a
// cancelled ctx surfaces as the context's error, anything else as a
// connection loss.
func (r *RemoteServer) lost(ctx context.Context, what string, err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		metricsOrNop(r.Metrics).DeadlineHit()
	}
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	r.sid = 0
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("%s: %w", what, cerr)
		}
	}
	return fmt.Errorf("%w: %s: %v", radio.ErrConnectionLost, what, err)
}

// Execute implements Remote over the wire.
func (r *RemoteServer) Execute(ctx context.Context, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, error) {

	sid, err := r.session(ctx, clientID)
	if err != nil {
		return nil, 0, false, err
	}
	req := &wire{}
	req.u8(opExec).u32(sid).str(clientID).str(class).str(method).bytes(argBytes).
		f64(float64(reqTime)).f64(float64(estEnd))
	m, err := r.roundTrip(ctx, req.buf)
	if err != nil {
		return nil, 0, false, err
	}
	res := append([]byte(nil), m.rdBytes()...)
	servTime := energy.Seconds(m.rdF64())
	queued := m.rdU8() == 1
	if m.err != nil {
		return nil, 0, false, m.err
	}
	return res, servTime, queued, nil
}

// CompiledBody implements Remote over the wire.
func (r *RemoteServer) CompiledBody(ctx context.Context, qname string, level jit.Level) (*isa.Code, int, error) {
	r.mu.Lock()
	sid := r.sid
	r.mu.Unlock()
	req := &wire{}
	req.u8(opCompile).u32(sid).str(qname).u8(byte(level))
	m, err := r.roundTrip(ctx, req.buf)
	if err != nil {
		return nil, 0, err
	}
	enc := m.rdBytes()
	if m.err != nil {
		return nil, 0, m.err
	}
	code, err := isa.DecodeCode(enc)
	if err != nil {
		return nil, 0, err
	}
	if m.pos+4 > len(m.buf) {
		return nil, 0, fmt.Errorf("%w: truncated size", ErrProtocol)
	}
	size := int(binary.BigEndian.Uint32(m.buf[m.pos:]))
	return code, size, nil
}

var _ Remote = (*RemoteServer)(nil)
var _ DepthAdvertiser = (*RemoteServer)(nil)
var _ Remote = (*Server)(nil)
