package core

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"greenvm/internal/jit"
	"greenvm/internal/lang"
)

// fuzzServer is built once: compiling the test program per input would
// drown the fuzzer in setup work.
var (
	fuzzOnce sync.Once
	fuzzSrv  *SessionServer
)

func fuzzServerInstance() *SessionServer {
	fuzzOnce.Do(func() {
		p, err := lang.Compile(testAppSrc)
		if err != nil {
			panic(err)
		}
		fuzzSrv = NewSessionServer(NewServer(p), SessionConfig{})
	})
	return fuzzSrv
}

// FuzzWireDecode throws arbitrary bytes at the frame reader, the wire
// readers and the server's request handler: none may panic, and the
// handler must always produce a decodable response frame. CI runs this
// for a short smoke window on every push.
func FuzzWireDecode(f *testing.F) {
	// Seed with well-formed requests so the fuzzer starts inside the
	// interesting part of the format.
	exec := &wire{}
	exec.u8(opExec).u32(0).str("fuzz").str("App").str("work").bytes([]byte{1, 2, 3}).f64(0).f64(1.5)
	f.Add(exec.buf)
	comp := &wire{}
	comp.u8(opCompile).u32(0).str("App.helper").u8(byte(jit.Level2))
	f.Add(comp.buf)
	hello := &wire{}
	hello.u8(opHello).str("fuzz-client")
	f.Add(hello.buf)
	f.Add([]byte{})
	f.Add([]byte{opExec, 0xFF, 0xFF})
	f.Add([]byte{0xEE, 0, 0, 0, 0})
	// A framed request (version byte + length + payload) seeds the
	// frame-level decoder, including a wrong-version header.
	var framed bytes.Buffer
	if err := writeFrame(&framed, comp.buf); err != nil {
		f.Fatal(err)
	}
	f.Add(framed.Bytes())
	wrongVer := append([]byte(nil), framed.Bytes()...)
	wrongVer[0] = protocolVersion + 1
	f.Add(wrongVer)

	f.Fuzz(func(t *testing.T, data []byte) {
		// The frame reader tolerates any input: it either decodes or
		// errors, never panics.
		readFrame(bytes.NewReader(data)) //nolint:errcheck

		// The raw field readers tolerate any input.
		m := &wire{buf: data}
		m.rdU8()
		m.rdU32()
		m.rdStr()
		m.rdBytes()
		m.rdF64()

		// The handler answers every request with a well-formed frame.
		resp := safeHandle(context.Background(), data, fuzzServerInstance(), nopRPCMetrics{})
		if len(resp) == 0 {
			t.Fatal("empty response frame")
		}
		out := &wire{buf: resp}
		switch out.rdU8() {
		case statusOK:
			// Valid requests produce op-specific payloads; decoding
			// them is exercised by the unit tests.
		case statusBusy:
			out.rdU32()
			if out.err != nil {
				t.Errorf("undecodable busy frame: %v", out.err)
			}
		case statusFail:
			if out.rdStr() == "" && out.err == nil {
				t.Error("failure frame with empty message")
			}
			if out.err != nil {
				t.Errorf("undecodable failure frame: %v", out.err)
			}
		default:
			t.Error("unknown status byte in response")
		}
	})
}
