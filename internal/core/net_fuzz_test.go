package core

import (
	"sync"
	"testing"

	"greenvm/internal/jit"
	"greenvm/internal/lang"
)

// fuzzServer is built once: compiling the test program per input would
// drown the fuzzer in setup work.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func fuzzServerInstance() *Server {
	fuzzOnce.Do(func() {
		p, err := lang.Compile(testAppSrc)
		if err != nil {
			panic(err)
		}
		fuzzSrv = NewServer(p)
	})
	return fuzzSrv
}

// FuzzWireDecode throws arbitrary bytes at the wire readers and the
// server's request handler: neither may panic, and the handler must
// always produce a decodable response frame. CI runs this for a short
// smoke window on every push.
func FuzzWireDecode(f *testing.F) {
	// Seed with well-formed requests so the fuzzer starts inside the
	// interesting part of the format.
	exec := &wire{}
	exec.u8(opExec).str("fuzz").str("App").str("work").bytes([]byte{1, 2, 3}).f64(0).f64(1.5)
	f.Add(exec.buf)
	comp := &wire{}
	comp.u8(opCompile).str("App.helper").u8(byte(jit.Level2))
	f.Add(comp.buf)
	f.Add([]byte{})
	f.Add([]byte{opExec, 0xFF, 0xFF})
	f.Add([]byte{0xEE, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		// The raw field readers tolerate any input.
		m := &wire{buf: data}
		m.rdU8()
		m.rdStr()
		m.rdBytes()
		m.rdF64()

		// The handler answers every request with a well-formed frame.
		resp := safeHandle(data, fuzzServerInstance(), nopRPCMetrics{})
		if len(resp) == 0 {
			t.Fatal("empty response frame")
		}
		out := &wire{buf: resp}
		switch out.rdU8() {
		case statusOK:
			// Valid requests produce op-specific payloads; decoding
			// them is exercised by the unit tests.
		case statusFail:
			if out.rdStr() == "" && out.err == nil {
				t.Error("failure frame with empty message")
			}
			if out.err != nil {
				t.Errorf("undecodable failure frame: %v", out.err)
			}
		default:
			t.Error("unknown status byte in response")
		}
	})
}
