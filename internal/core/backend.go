package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
)

// Multi-backend offloading: the paper prices *whether* to offload to
// its single resource-rich server; a deployed fleet prices *which* of
// a pool of servers to offload to. The client keeps one busy-rate
// EWMA per backend (the same admission-pricing seam it already uses
// for a single server), ranks a remote candidate per backend, and
// passes its cheapest backend as a placement hint. The pool's
// placement policy may honour the hint (client-side pick-cheapest) or
// override it (consistent-hash session affinity, power-of-two-choices
// on advertised queue depth); the answer reports which backend
// actually served — or shed — the request, so the client attributes
// the outcome to the right EWMA.

// BackendCandidate is one backend's priced remote candidate in an
// offload decision: the client's current busy-rate estimate for the
// backend and the per-invocation remote energy inflated by it.
type BackendCandidate struct {
	// ID names the backend ("" for a single anonymous server).
	ID string
	// Busy is the client's busy-rate EWMA for the backend (0 = no
	// recent admission rejections).
	Busy float64
	// Cost is the estimated per-invocation offload energy (J), the
	// base remote energy inflated by 1/(1-Busy).
	Cost float64
	// Open marks a backend whose per-backend circuit breaker currently
	// holds it down: it is priced for observability but excluded from
	// the cheapest-candidate pick (unless every backend is open).
	Open bool
}

// BackendError attributes a failed remote exchange to one backend of a
// pool, so the client strikes that backend's circuit breaker instead
// of blinding itself to the N-1 healthy ones. It unwraps to the
// underlying error (typically radio.ErrConnectionLost).
type BackendError struct {
	// Backend names the backend the exchange was attributed to.
	Backend string
	// Err is the underlying failure.
	Err error
}

func (e *BackendError) Error() string {
	return fmt.Sprintf("core: backend %s: %v", e.Backend, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *BackendError) Unwrap() error { return e.Err }

// BackendProber is implemented by MultiRemotes that can answer a
// per-backend liveness question — the half-open probe of a
// per-backend circuit breaker. The probe is charged to the client's
// radio account by the caller; at is the client's virtual time, so
// simulated pools (internal/fleet) answer from the backend's state at
// exactly that instant. A MultiRemote without this interface gets
// link-level probes only (the round trip proves the radio path, and
// the backend breaker closes on it).
type BackendProber interface {
	// ProbeBackend reports nil when the named backend is up and
	// reachable at the given virtual time.
	ProbeBackend(ctx context.Context, backend string, at energy.Seconds) error
}

// MultiRemote is a Remote that fans the client out to a pool of named
// backends. Execute (the plain Remote path) lets the pool place the
// request itself; ExecuteOn carries the client's placement hint and
// reports the backend that served the request (the pool's placement
// policy may override the hint). A shed request carries the shedding
// backend in its BusyError.
type MultiRemote interface {
	Remote
	// Backends lists the stable backend IDs, in placement order. The
	// client prices one remote candidate per entry.
	Backends() []string
	// ExecuteOn is Execute with a placement hint (a backend ID, ""
	// for no preference); servedBy is the backend that ran the
	// request.
	ExecuteOn(ctx context.Context, backend, clientID, class, method string, argBytes []byte,
		reqTime, estEnd energy.Seconds) (res []byte, servTime energy.Seconds, queued bool, servedBy string, err error)
}

// DepthAdvertiser is implemented by transports that learn the
// server's advertised admission-queue depth (carried on wire-v2 hello
// and busy frames); power-of-two-choices placement samples it.
type DepthAdvertiser interface {
	// AdvertisedDepth is the most recently advertised queue depth; ok
	// is false before any advertisement arrived.
	AdvertisedDepth() (depth int, ok bool)
}

// RemotePool is the client-side MultiRemote over real transports: N
// Remotes (TCP RemoteServers, in-process Sessions) behind one
// client. Placement is client-driven — the client's pick-cheapest
// hint decides; a hintless Execute falls back to the lowest
// advertised queue depth (ties to the first backend added). The fleet
// simulator uses its own engine-routed MultiRemote instead, so pool
// placement there stays deterministic in virtual time.
type RemotePool struct {
	mu       sync.Mutex
	ids      []string
	backends map[string]Remote
}

// NewRemotePool builds an empty pool; add backends before use.
func NewRemotePool() *RemotePool {
	return &RemotePool{backends: map[string]Remote{}}
}

// Add registers a named backend. IDs must be unique and non-empty;
// re-adding an ID replaces its Remote.
func (p *RemotePool) Add(id string, r Remote) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.backends[id]; !ok {
		p.ids = append(p.ids, id)
	}
	p.backends[id] = r
}

// Backends implements MultiRemote.
func (p *RemotePool) Backends() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.ids...)
}

// pick resolves a hint to a backend, falling back to the lowest
// advertised queue depth and then to the first backend.
func (p *RemotePool) pick(hint string) (string, Remote) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.backends[hint]; ok {
		return hint, r
	}
	if len(p.ids) == 0 {
		return "", nil
	}
	best, bestDepth := p.ids[0], -1
	for _, id := range p.ids {
		da, ok := p.backends[id].(DepthAdvertiser)
		if !ok {
			continue
		}
		if d, ok := da.AdvertisedDepth(); ok && (bestDepth < 0 || d < bestDepth) {
			best, bestDepth = id, d
		}
	}
	return best, p.backends[best]
}

// Execute implements Remote: a hintless request goes to the backend
// with the lowest advertised depth.
func (p *RemotePool) Execute(ctx context.Context, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, error) {

	res, servTime, queued, _, err := p.ExecuteOn(ctx, "", clientID, class, method, argBytes, reqTime, estEnd)
	return res, servTime, queued, err
}

// ExecuteOn implements MultiRemote: route to the hinted backend and
// attribute the outcome to it.
func (p *RemotePool) ExecuteOn(ctx context.Context, backend, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, string, error) {

	id, r := p.pick(backend)
	if r == nil {
		return nil, 0, false, "", errors.New("core: remote pool has no backends")
	}
	res, servTime, queued, err := r.Execute(ctx, clientID, class, method, argBytes, reqTime, estEnd)
	if err != nil {
		var busy *BusyError
		if errors.As(err, &busy) && busy.Backend == "" {
			// An in-process backend has no wire advertisement; stamp
			// the pool's name so the client inflates the right EWMA.
			err = &BusyError{QueueDepth: busy.QueueDepth, Backend: id}
		} else if errors.Is(err, radio.ErrConnectionLost) {
			// Attribute the loss: one dead backend must strike its own
			// breaker, not blind the client to the whole pool.
			err = &BackendError{Backend: id, Err: err}
		}
		return nil, 0, false, id, err
	}
	return res, servTime, queued, id, nil
}

// ProbeBackend implements BackendProber: a real transport has no
// virtual-time liveness oracle, so a pool backend is assumed up — the
// link-level probe round trip that precedes this call already proved
// the radio path, and the next real exchange re-strikes the breaker if
// the backend is still failing.
func (p *RemotePool) ProbeBackend(ctx context.Context, backend string, at energy.Seconds) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.backends[backend]; !ok {
		return fmt.Errorf("core: remote pool has no backend %q", backend)
	}
	return nil
}

// CompiledBody implements Remote: body downloads are control-plane
// traffic; every backend serves identical bodies, so the first one
// answers.
func (p *RemotePool) CompiledBody(ctx context.Context, qname string, level jit.Level) (*isa.Code, int, error) {
	p.mu.Lock()
	var r Remote
	if len(p.ids) > 0 {
		r = p.backends[p.ids[0]]
	}
	p.mu.Unlock()
	if r == nil {
		return nil, 0, errors.New("core: remote pool has no backends")
	}
	return r.CompiledBody(ctx, qname, level)
}

var _ MultiRemote = (*RemotePool)(nil)
