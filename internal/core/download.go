package core

import (
	"greenvm/internal/energy"
)

// Dynamic application download: the paper's motivating capability is
// that clients "download new applications on demand as opposed to
// buying a device with applications pre-installed" (§1). Receiving the
// class files costs communication energy, and class loading costs
// verification work on the client.

// Class-loading work model: bytes parsed and bytecodes verified by the
// dataflow verifier, in instruction-equivalents.
const (
	verifyUnitsPerCodeByte = 90
	loadUnitsPerClassByte  = 14
)

// DownloadApplication charges the cost of fetching the application's
// class files from the server over the current channel and of
// verifying every method on arrival. It returns the transferred byte
// count. Experiments do not include this cost (the paper's figures
// assume the application is already installed); it is exposed for
// whole-lifecycle studies.
func (c *Client) DownloadApplication() (int, error) {
	encoded, err := c.Prog.Encode()
	if err != nil {
		return 0, err
	}
	tRx, err := c.Link.Recv(len(encoded))
	c.Clock += tRx
	if err != nil {
		return 0, err
	}
	c.chargeClassLoad(len(encoded))
	c.syncClock()
	return len(encoded), nil
}

// chargeClassLoad bills parsing and bytecode verification.
func (c *Client) chargeClassLoad(encodedBytes int) {
	codeBytes := 0
	for _, m := range c.Prog.Methods {
		codeBytes += m.CodeSize()
	}
	units := uint64(encodedBytes)*loadUnitsPerClassByte + uint64(codeBytes)*verifyUnitsPerCodeByte
	acct := c.VM.Acct
	acct.AddInstr(energy.Load, units*40/100)
	acct.AddInstr(energy.Store, units*15/100)
	acct.AddInstr(energy.Branch, units*15/100)
	acct.AddInstr(energy.ALUSimple, units*30/100)
}

// ClassLoadEnergy reports the verification/loading cost of the
// client's program without charging it.
func (c *Client) ClassLoadEnergy() energy.Joules {
	encoded, err := c.Prog.Encode()
	if err != nil {
		return 0
	}
	tmp := energy.NewAccount(c.Model)
	codeBytes := 0
	for _, m := range c.Prog.Methods {
		codeBytes += m.CodeSize()
	}
	units := uint64(len(encoded))*loadUnitsPerClassByte + uint64(codeBytes)*verifyUnitsPerCodeByte
	tmp.AddInstr(energy.Load, units*40/100)
	tmp.AddInstr(energy.Store, units*15/100)
	tmp.AddInstr(energy.Branch, units*15/100)
	tmp.AddInstr(energy.ALUSimple, units*30/100)
	return tmp.Total()
}
