package core

import (
	"context"

	"testing"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/jit"
	"greenvm/internal/lang"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

const testAppSrc = `
class App {
  potential static int work(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
      s = s + helper(i) % 1000;
    }
    return s;
  }
  static int helper(int x) { return x * x + 3 * x + 7; }

  potential static int vecsum(int[] a) {
    int s = 0;
    for (int i = 0; i < a.length; i = i + 1) { s = s + a[i]; }
    return s;
  }
}
`

func testProgram(t testing.TB) *bytecode.Program {
	t.Helper()
	p, err := lang.Compile(testAppSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func workTarget() *Target {
	return &Target{
		Class:  "App",
		Method: "work",
		MakeArgs: func(v *vm.VM, size int, r *rng.RNG) ([]vm.Slot, error) {
			return []vm.Slot{vm.IntSlot(int32(size))}, nil
		},
		SizeOf: func(v *vm.VM, args []vm.Slot) (float64, error) {
			return float64(args[0].I), nil
		},
		ProfileSizes: []int{50, 100, 200, 400, 800},
	}
}

func vecsumTarget() *Target {
	return &Target{
		Class:  "App",
		Method: "vecsum",
		MakeArgs: func(v *vm.VM, size int, r *rng.RNG) ([]vm.Slot, error) {
			h, err := v.Heap.NewArray(bytecode.ElemInt, int64(size))
			if err != nil {
				return nil, err
			}
			for i := 0; i < size; i++ {
				if err := v.Heap.SetElemI(h, int64(i), int64(r.Intn(100))); err != nil {
					return nil, err
				}
			}
			return []vm.Slot{vm.RefSlot(h)}, nil
		},
		SizeOf: func(v *vm.VM, args []vm.Slot) (float64, error) {
			n, err := v.Heap.ArrayLen(args[0].I)
			return float64(n), err
		},
		ProfileSizes: []int{32, 64, 128, 256, 512},
	}
}

func newProfiler(p *bytecode.Program) *Profiler {
	return &Profiler{
		Prog:        p,
		ClientModel: energy.MicroSPARCIIep(),
		ServerModel: energy.ServerSPARC(),
		Seed:        99,
	}
}

func TestProfileTarget(t *testing.T) {
	p := testProgram(t)
	prof, err := newProfiler(p).ProfileTarget(workTarget())
	if err != nil {
		t.Fatal(err)
	}
	// Interpretation must be estimated costlier than compiled modes.
	eI := prof.EnergyOf[ModeInterp].Eval(500)
	eL1 := prof.EnergyOf[ModeL1].Eval(500)
	if eI <= eL1 {
		t.Errorf("interp estimate %g <= L1 estimate %g", eI, eL1)
	}
	// Compile energy grows with level.
	if !(prof.CompileEnergy[0] < prof.CompileEnergy[1] && prof.CompileEnergy[1] < prof.CompileEnergy[2]) {
		t.Errorf("compile energies not increasing: %v", prof.CompileEnergy)
	}
	for lv := 0; lv < 3; lv++ {
		if prof.PlanCodeBytes[lv] <= 0 {
			t.Errorf("no code bytes at L%d", lv+1)
		}
	}
	if prof.MaxFitErr > 0.05 {
		t.Errorf("training fit error %g too large", prof.MaxFitErr)
	}
	// Attributes mirrored into the class file.
	m := p.FindMethod("App", "work")
	if m.Attr("plan.compile.energy.L1", -1) <= 0 {
		t.Error("plan compile attr missing")
	}
	if m.Attr("compile.energy.L1", -1) <= 0 {
		t.Error("per-method compile attr missing")
	}
}

func TestProfileAccuracyWithinTwoPercent(t *testing.T) {
	p := testProgram(t)
	pr := newProfiler(p)
	target := workTarget()
	prof, err := pr.ProfileTarget(target)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := pr.ValidateProfile(target, prof, []int{75, 150, 300, 600})
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.02 {
		t.Errorf("held-out estimator error %.4f exceeds the paper's 2%%", worst)
	}
}

// newTestClient wires a client+server for one strategy.
func newTestClient(t *testing.T, p *bytecode.Program, strategy Strategy, ch radio.Channel, targets ...*Target) *Client {
	t.Helper()
	server := NewServer(p)
	c := New(ClientConfig{ID: "client-1", Prog: p, Server: server, Channel: ch, Strategy: strategy, Seed: 7})
	pr := newProfiler(p)
	for _, tg := range targets {
		prof, err := pr.ProfileTarget(tg)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Register(tg, prof); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestAllStrategiesComputeSameResult(t *testing.T) {
	var want int64
	first := true
	for _, s := range Strategies {
		p := testProgram(t)
		c := newTestClient(t, p, s, radio.Fixed{Cls: radio.Class4}, workTarget())
		res, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(200)})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if first {
			want = res.I
			first = false
		} else if res.I != want {
			t.Errorf("%v: result %d, want %d", s, res.I, want)
		}
		if c.Energy() <= 0 {
			t.Errorf("%v: no energy charged", s)
		}
		if c.Clock <= 0 {
			t.Errorf("%v: clock did not advance", s)
		}
	}
}

func TestRemoteRefArguments(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyR, radio.Fixed{Cls: radio.Class4}, vecsumTarget())
	tg := c.targets[p.FindMethod("App", "vecsum")]
	args, err := tg.MakeArgs(c.VM, 100, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Reference result computed locally on a scratch VM.
	v2 := vm.New(p, energy.MicroSPARCIIep())
	args2, _ := tg.MakeArgs(v2, 100, rng.New(3))
	want, err := v2.InvokeByName("App", "vecsum", args2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Invoke(context.Background(), "App", "vecsum", args)
	if err != nil {
		t.Fatal(err)
	}
	if got.I != want.I {
		t.Errorf("remote vecsum = %d, want %d", got.I, want.I)
	}
	if c.Stats.ModeCounts[ModeRemote] != 1 {
		t.Errorf("mode counts = %v", c.Stats.ModeCounts)
	}
	if c.VM.Acct.Component(energy.CompRadioTx) <= 0 ||
		c.VM.Acct.Component(energy.CompRadioRx) <= 0 ||
		c.VM.Acct.Component(energy.CompLeakage) <= 0 {
		t.Error("remote execution should charge radio tx, rx and leakage")
	}
}

func TestStaticCompiledStrategiesCompileOnce(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyL2, radio.Fixed{Cls: radio.Class4}, workTarget())
	for i := 0; i < 3; i++ {
		if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(100)}); err != nil {
			t.Fatal(err)
		}
	}
	// Plan = work + helper, compiled once at L2.
	if c.Stats.LocalCompiles != 2 {
		t.Errorf("LocalCompiles = %d, want 2", c.Stats.LocalCompiles)
	}
	if c.Stats.ModeCounts[ModeL2] != 3 {
		t.Errorf("mode counts = %v", c.Stats.ModeCounts)
	}
	if c.VM.Acct.Component(energy.CompCompile) <= 0 {
		t.Error("no compile energy recorded")
	}
}

func TestConnectionLossFallsBackLocally(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyR, radio.Fixed{Cls: radio.Class4}, workTarget())
	c.Link.LossProb = 1.0
	res, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(150)})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.Fallbacks == 0 {
		t.Error("expected a fallback")
	}
	if c.Stats.ModeCounts[ModeRemote] != 1 {
		t.Errorf("mode counts = %v (remote attempt should be recorded)", c.Stats.ModeCounts)
	}
	// The local result must still be correct.
	v2 := vm.New(p, energy.MicroSPARCIIep())
	want, _ := v2.InvokeByName("App", "work", []vm.Slot{vm.IntSlot(150)})
	if res.I != want.I {
		t.Errorf("fallback result %d, want %d", res.I, want.I)
	}
}

func TestAdaptiveCompilesHotMethod(t *testing.T) {
	p := testProgram(t)
	// Poor channel makes remote expensive; repeated invocations make
	// compilation worthwhile.
	c := newTestClient(t, p, StrategyAL, radio.Fixed{Cls: radio.Class1}, workTarget())
	for i := 0; i < 40; i++ {
		if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(600)}); err != nil {
			t.Fatal(err)
		}
		c.StepChannel()
	}
	compiled := c.Stats.ModeCounts[ModeL1] + c.Stats.ModeCounts[ModeL2] + c.Stats.ModeCounts[ModeL3]
	if compiled == 0 {
		t.Errorf("AL never chose a compiled mode over 40 hot invocations: %v", c.Stats.ModeCounts)
	}
	if c.Stats.ModeCounts[ModeRemote] > 0 {
		t.Errorf("AL offloaded under a Class 1 channel: %v", c.Stats.ModeCounts)
	}
}

func TestAdaptiveOffloadsUnderGoodChannel(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyAL, radio.Fixed{Cls: radio.Class4}, workTarget())
	for i := 0; i < 10; i++ {
		if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(800)}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats.ModeCounts[ModeRemote] == 0 {
		t.Errorf("AL never offloaded under Class 4 with large inputs: %v", c.Stats.ModeCounts)
	}
}

func TestAARemoteCompilation(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyAA, radio.Fixed{Cls: radio.Class4}, workTarget())
	// Force a compiled mode by invoking repeatedly under a poor-for-
	// offload configuration: use moderate size where compiled local
	// execution wins.
	for i := 0; i < 30; i++ {
		if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(400)}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats.RemoteCompiles == 0 && c.Stats.LocalCompiles == 0 {
		t.Skip("AA never compiled in this configuration")
	}
	// Under a good channel, downloading beats paying the compiler
	// load locally for the first compilation.
	if c.Stats.RemoteCompiles == 0 {
		t.Errorf("AA with good channel should download pre-compiled code (local=%d remote=%d)",
			c.Stats.LocalCompiles, c.Stats.RemoteCompiles)
	}
}

func TestAAFallsBackToLocalCompileOnLoss(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyAA, radio.Fixed{Cls: radio.Class4}, workTarget())
	c.Link.LossProb = 1.0
	// Remote execution impossible; remote compile impossible; client
	// must still make progress locally.
	res, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(300)})
	if err != nil {
		t.Fatal(err)
	}
	v2 := vm.New(p, energy.MicroSPARCIIep())
	want, _ := v2.InvokeByName("App", "work", []vm.Slot{vm.IntSlot(300)})
	if res.I != want.I {
		t.Errorf("result %d, want %d", res.I, want.I)
	}
	if c.Stats.RemoteCompiles != 0 {
		t.Error("remote compile should be impossible with a dead link")
	}
}

func TestServerStatusTableQueuesEarlyResults(t *testing.T) {
	p := testProgram(t)
	server := NewServer(p)
	v := vm.New(p, energy.MicroSPARCIIep())
	m := p.FindMethod("App", "work")
	args, _ := v.Heap.EncodeArgs(m, []vm.Slot{vm.IntSlot(100)})
	// Client claims it will sleep for a long time: result gets queued.
	_, servTime, queued, err := server.Execute(context.Background(), "c1", "App", "work", args, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !queued {
		t.Error("result should be queued for a sleeping client")
	}
	if servTime <= 0 {
		t.Error("server time should be positive")
	}
	st := server.Status("c1")
	if !st.Queued || st.LastResult == nil {
		t.Error("status table row not updated")
	}
	// Client that wakes immediately: not queued.
	_, _, queued, err = server.Execute(context.Background(), "c1", "App", "work", args, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if queued {
		t.Error("result should not be queued when the client is awake")
	}
}

func TestServerCompiledBodyCache(t *testing.T) {
	p := testProgram(t)
	server := NewServer(p)
	c1, n1, err := server.CompiledBody(context.Background(), "App.helper", jit.Level2)
	if err != nil {
		t.Fatal(err)
	}
	c2, n2, err := server.CompiledBody(context.Background(), "App.helper", jit.Level2)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 || n1 <= 0 {
		t.Errorf("sizes %d, %d", n1, n2)
	}
	if c1 == c2 {
		t.Error("server must hand out clones, not shared bodies")
	}
	if _, _, err := server.CompiledBody(context.Background(), "No.Such", jit.Level1); err == nil {
		t.Error("unknown method should error")
	}
}

func TestCompilePlanCoversCallees(t *testing.T) {
	p := testProgram(t)
	plan := compilePlan(p, p.FindMethod("App", "work"))
	names := map[string]bool{}
	for _, m := range plan {
		names[m.QName()] = true
	}
	if !names["App.work"] || !names["App.helper"] {
		t.Errorf("plan = %v", names)
	}
	// Potential methods are not pulled into other plans.
	if names["App.vecsum"] {
		t.Error("unrelated potential method in plan")
	}
}

func TestDeterministicScenario(t *testing.T) {
	runOnce := func() energy.Joules {
		p := testProgram(t)
		c := newTestClient(t, p, StrategyAA, radio.UniformChannel(rng.New(5)), workTarget())
		for i := 0; i < 15; i++ {
			if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(int32(100 + 50*i))}); err != nil {
				t.Fatal(err)
			}
			c.StepChannel()
		}
		return c.Energy()
	}
	if runOnce() != runOnce() {
		t.Error("identical scenarios must consume identical energy")
	}
}

// TestMemoReplayMatchesReal verifies that replaying a memoized
// invocation charges the same energy as re-simulating it.
func TestMemoReplayMatchesReal(t *testing.T) {
	for _, s := range []Strategy{StrategyL2, StrategyI, StrategyR} {
		p := testProgram(t)
		run := func(useMemo bool) float64 {
			c := newTestClient(t, p, s, radio.Fixed{Cls: radio.Class4}, workTarget())
			if useMemo {
				c.Memo = NewMemo()
				c.MemoInputKey = 1
			}
			args := []vm.Slot{vm.IntSlot(250)}
			for i := 0; i < 5; i++ {
				c.VM.Hier.Flush()
				if _, err := c.Invoke(context.Background(), "App", "work", args); err != nil {
					t.Fatal(err)
				}
			}
			return float64(c.Energy())
		}
		real, memo := run(false), run(true)
		rel := abs(real-memo) / real
		if rel > 0.01 {
			t.Errorf("%v: memoized energy %g differs from real %g by %.3f%%", s, memo, real, rel*100)
		}
	}
}

func TestMemoCountsHits(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyI, radio.Fixed{Cls: radio.Class4}, workTarget())
	c.Memo = NewMemo()
	c.MemoInputKey = 7
	args := []vm.Slot{vm.IntSlot(100)}
	for i := 0; i < 3; i++ {
		if _, err := c.Invoke(context.Background(), "App", "work", args); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats.MemoHits != 2 {
		t.Errorf("MemoHits = %d, want 2", c.Stats.MemoHits)
	}
	if c.Memo.Size() != 1 {
		t.Errorf("memo size = %d, want 1", c.Memo.Size())
	}
	// A different input key re-measures.
	c.MemoInputKey = 8
	if _, err := c.Invoke(context.Background(), "App", "work", args); err != nil {
		t.Fatal(err)
	}
	if c.Memo.Size() != 2 {
		t.Errorf("memo size = %d, want 2", c.Memo.Size())
	}
}
