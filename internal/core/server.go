package core

import (
	"context"
	"fmt"
	"sync"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
	"greenvm/internal/vm"
)

// Remote is the server-side interface the client depends on: execute
// an offloaded method, or hand out a pre-compiled native body. It is
// implemented by the in-process Server, by the Session layer that
// multiplexes many clients onto one Server, and by the TCP adapter
// (DialServer) that talks to a server in another process, mirroring
// the paper's two-workstation prototype. ctx cancels in-flight calls
// (a nil ctx is tolerated and means context.Background()); an
// overloaded implementation may reject with a BusyError.
type Remote interface {
	Execute(ctx context.Context, clientID, class, method string, argBytes []byte,
		reqTime, estEnd energy.Seconds) (resBytes []byte, serverTime energy.Seconds, queued bool, err error)
	CompiledBody(ctx context.Context, qname string, level jit.Level) (*isa.Code, int, error)
}

// Server is the resource-rich remote host: it executes offloaded
// methods reflectively (Fig 4) and serves pre-compiled native method
// bodies for remote compilation (§3.3). Server energy is not modelled;
// server time is (it determines how long the client sleeps).
//
// The server keeps a "mobile status table" with each client's request
// time and estimated power-down duration: when a result is ready
// before the client wakes, it is queued rather than transmitted into a
// powered-down receiver.
type Server struct {
	Prog  *bytecode.Program
	Model *energy.CPUModel

	// RequestOverhead is the fixed server-side handling time per
	// request (dispatch, scheduling).
	RequestOverhead energy.Seconds

	mu     sync.Mutex
	vm     *vm.VM
	bodies map[*bytecode.Method][3]*isa.Code
	status map[string]*MobileStatus
}

// MobileStatus is one row of the mobile status table.
type MobileStatus struct {
	RequestTime  energy.Seconds
	EstimatedEnd energy.Seconds // when the client expects to wake
	LastResult   []byte         // queued result, if the client slept past completion
	Queued       bool
}

// NewServer builds a server around the (shared) program. The paper's
// dynamic-download model has the server own the application and ship
// it to clients, so client and server agree on the class files.
func NewServer(prog *bytecode.Program) *Server {
	model := energy.ServerSPARC()
	s := &Server{
		Prog:            prog,
		Model:           model,
		RequestOverhead: 200e-6, // 200us dispatch overhead
		vm:              vm.New(prog, model),
		bodies:          map[*bytecode.Method][3]*isa.Code{},
		status:          map[string]*MobileStatus{},
	}
	s.vm.Dispatch = vm.DispatchFunc(s.dispatch)
	return s
}

// dispatch runs everything the server executes at the highest
// optimization level (the server is resource-rich).
func (s *Server) dispatch(m *bytecode.Method) *isa.Code {
	if c := s.bodies[m][jit.Level3-1]; c != nil {
		return c
	}
	code, _, err := jit.CompileCached(s.Prog, m, jit.Level3)
	if err != nil {
		// Fall back to interpretation for uncompilable methods.
		return nil
	}
	s.vm.InstallCode(code)
	b := s.bodies[m]
	b[jit.Level3-1] = code
	s.bodies[m] = b
	return code
}

// Status returns the mobile status table row for a client (creating
// it on first use).
func (s *Server) Status(clientID string) *MobileStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.status[clientID]
	if !ok {
		st = &MobileStatus{}
		s.status[clientID] = st
	}
	return st
}

// noteRequest updates the client's mobile status table row for one
// request and reports whether the result had to be queued (the server
// finished before the client's estimated wake time). It is shared by
// Execute and the session layer's cache-hit path.
func (s *Server) noteRequest(clientID string, reqTime, estEnd, serverTime energy.Seconds, resBytes []byte) bool {
	st := s.Status(clientID)
	s.mu.Lock()
	defer s.mu.Unlock()
	st.RequestTime = reqTime
	st.EstimatedEnd = estEnd
	// Mobile status table check: if the computation finished before
	// the client's estimated wake time, the result is queued until the
	// client wakes (paper §2).
	if reqTime+serverTime < estEnd {
		st.LastResult = resBytes
		st.Queued = true
	} else {
		st.Queued = false
	}
	return st.Queued
}

// Execute reflectively invokes class.method with the serialized
// arguments and returns the serialized result plus the server
// computation time. reqTime and estEnd update the mobile status table;
// queued reports whether the result had to wait for the client to
// wake.
func (s *Server) Execute(ctx context.Context, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) (resBytes []byte, serverTime energy.Seconds, queued bool, err error) {

	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, 0, false, err
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	m := s.Prog.FindMethod(class, method)
	if m == nil {
		return nil, 0, false, fmt.Errorf("core: server has no method %s.%s", class, method)
	}
	st, ok := s.status[clientID]
	if !ok {
		st = &MobileStatus{}
		s.status[clientID] = st
	}
	st.RequestTime = reqTime
	st.EstimatedEnd = estEnd

	s.vm.ResetRun(true)
	s.vm.Acct.Reset()
	args, err := s.vm.Heap.DecodeArgs(m, argBytes)
	if err != nil {
		return nil, 0, false, err
	}
	res, err := s.vm.Invoke(m, args)
	if err != nil {
		return nil, 0, false, fmt.Errorf("core: remote execution of %s failed: %w", m.QName(), err)
	}
	resBytes, err = s.vm.Heap.EncodeValue(m.Ret.Kind, res)
	if err != nil {
		return nil, 0, false, err
	}
	serverTime = s.vm.Acct.Time() + s.RequestOverhead

	// Mobile status table check: if the computation finished before
	// the client's estimated wake time, the result is queued until the
	// client wakes (paper §2).
	if reqTime+serverTime < estEnd {
		st.LastResult = resBytes
		st.Queued = true
		queued = true
	} else {
		st.Queued = false
	}
	return resBytes, serverTime, queued, nil
}

// CompiledBody returns (and caches) the native body of the named
// method at the given level, for download by clients, along with its
// size in bytes. The body is compiled for the client's ISA — the
// server "supports a limited number of preferred client types".
func (s *Server) CompiledBody(ctx context.Context, qname string, level jit.Level) (*isa.Code, int, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var m *bytecode.Method
	for _, cand := range s.Prog.Methods {
		if cand.QName() == qname {
			m = cand
			break
		}
	}
	if m == nil {
		return nil, 0, fmt.Errorf("core: server has no method %s", qname)
	}
	if c := s.bodies[m][level-1]; c != nil {
		return cloneCode(c), c.SizeBytes(), nil
	}
	code, st, err := jit.CompileCached(s.Prog, m, level)
	if err != nil {
		return nil, 0, err
	}
	b := s.bodies[m]
	b[level-1] = code
	s.bodies[m] = b
	return cloneCode(code), st.CodeBytes(), nil
}

// cloneCode copies a body's header so each client installs it at its
// own code address without racing on Base. The instruction slice is
// immutable after compilation and is shared.
func cloneCode(c *isa.Code) *isa.Code {
	cp := *c
	return &cp
}
