// Package core implements the paper's contribution: the energy-aware
// offloading framework that decides, per invocation of each
// "potential method", where to execute it (locally or on the server)
// and how (interpreted, or JIT-compiled at one of three optimization
// levels), and — in the AA strategy — where to compile (locally, or by
// downloading the pre-compiled body from the server).
package core

import (
	"fmt"

	"greenvm/internal/jit"
)

// Mode is one way of executing a potential method.
type Mode int

// Execution modes. The first four are local; ModeRemote offloads to
// the server.
const (
	ModeInterp Mode = iota
	ModeL1
	ModeL2
	ModeL3
	ModeRemote

	// NumModes counts the execution modes; every array indexed by Mode
	// (mode counters, per-mode estimators) is sized with it.
	NumModes = int(ModeRemote) + 1

	numLocalModes = NumModes - 1
)

// String names the mode as in the paper.
func (m Mode) String() string {
	switch m {
	case ModeInterp:
		return "I"
	case ModeL1:
		return "L1"
	case ModeL2:
		return "L2"
	case ModeL3:
		return "L3"
	case ModeRemote:
		return "R"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Level returns the JIT level of a compiled local mode (ModeL1..L3).
func (m Mode) Level() jit.Level {
	switch m {
	case ModeL1:
		return jit.Level1
	case ModeL2:
		return jit.Level2
	case ModeL3:
		return jit.Level3
	default:
		panic(fmt.Sprintf("core: mode %v has no JIT level", m))
	}
}

// IsCompiled reports whether the mode runs native code locally.
func (m Mode) IsCompiled() bool { return m >= ModeL1 && m <= ModeL3 }

// Strategy selects how execution decisions are made.
type Strategy int

// The seven strategies of Fig 5: five static, two adaptive.
const (
	StrategyR Strategy = iota // all potential methods remote
	StrategyI                 // interpret everything locally
	StrategyL1
	StrategyL2
	StrategyL3
	StrategyAL // adaptive execution, local compilation
	StrategyAA // adaptive execution, adaptive compilation
)

// Strategies lists all seven in the paper's order.
var Strategies = []Strategy{StrategyR, StrategyI, StrategyL1, StrategyL2, StrategyL3, StrategyAL, StrategyAA}

// String names the strategy as in the paper.
func (s Strategy) String() string {
	switch s {
	case StrategyR:
		return "R"
	case StrategyI:
		return "I"
	case StrategyL1:
		return "L1"
	case StrategyL2:
		return "L2"
	case StrategyL3:
		return "L3"
	case StrategyAL:
		return "AL"
	case StrategyAA:
		return "AA"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Adaptive reports whether the strategy decides per invocation.
func (s Strategy) Adaptive() bool { return s == StrategyAL || s == StrategyAA }

// StaticMode returns the fixed mode of a static strategy.
func (s Strategy) StaticMode() Mode {
	switch s {
	case StrategyR:
		return ModeRemote
	case StrategyI:
		return ModeInterp
	case StrategyL1:
		return ModeL1
	case StrategyL2:
		return ModeL2
	case StrategyL3:
		return ModeL3
	default:
		panic(fmt.Sprintf("core: %v is not static", s))
	}
}
