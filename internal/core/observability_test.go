package core

import (
	"context"

	"errors"
	"testing"

	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// failingRemote passes compilation through but fails every execution
// with an ordinary (non-connection-loss) error, so the invocation
// errors out after the link already charged the send.
type failingRemote struct {
	inner Remote
}

var errServerRefused = errors.New("server refused")

func (f failingRemote) Execute(ctx context.Context, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, error) {
	return nil, 0, false, errServerRefused
}

func (f failingRemote) CompiledBody(ctx context.Context, qname string, level jit.Level) (*isa.Code, int, error) {
	return f.inner.CompiledBody(ctx, qname, level)
}

// TestStatsRadioSyncedAfterTrailingFailure is the regression test for
// the Stats.Radio staleness: an invocation that errors out after its
// send emits no EvInvoke, so the bytes of the trailing exchange never
// reach Stats until SyncStats folds the link's final counters in.
func TestStatsRadioSyncedAfterTrailingFailure(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyR, radio.Fixed{Cls: radio.Class4}, workTarget())
	args := []vm.Slot{vm.IntSlot(150)}
	if _, err := c.Invoke(context.Background(), "App", "work", args); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Radio != c.Link.Telemetry() {
		t.Fatalf("after a clean invocation Stats.Radio %+v should match the link %+v",
			c.Stats.Radio, c.Link.Telemetry())
	}

	// The next invocation's send succeeds (charging the link) but the
	// server refuses, so the invocation errors with no EvInvoke.
	c.Server = failingRemote{inner: c.Server}
	c.NewExecution()
	if _, err := c.Invoke(context.Background(), "App", "work", args); !errors.Is(err, errServerRefused) {
		t.Fatalf("invoke error = %v, want the server refusal", err)
	}
	if c.Stats.Radio == c.Link.Telemetry() {
		t.Fatal("test premise broken: the trailing failure left no unreported telemetry")
	}
	c.SyncStats()
	if c.Stats.Radio != c.Link.Telemetry() {
		t.Errorf("after SyncStats, Stats.Radio %+v still diverges from the link %+v",
			c.Stats.Radio, c.Link.Telemetry())
	}
}

// pairingSink checks the EvEstimate/EvInvoke protocol: for adaptive
// strategies every invocation is preceded by exactly one estimate for
// the same method, and the estimate's chosen mode is the invocation's
// decided mode.
type pairingSink struct {
	t         *testing.T
	pending   map[string]*Estimate
	estimates int
	invokes   int
}

func (ps *pairingSink) Emit(e Event) {
	switch e.Kind {
	case EvEstimate:
		name := e.Method.QName()
		if ps.pending[name] != nil {
			ps.t.Errorf("two estimates for %s without an invocation between them", name)
		}
		if e.Est == nil {
			ps.t.Fatal("EvEstimate without an Estimate payload")
		}
		ps.pending[name] = e.Est
		ps.estimates++
	case EvInvoke:
		name := e.Method.QName()
		est := ps.pending[name]
		if est == nil {
			ps.t.Errorf("invocation of %s without a preceding estimate", name)
			return
		}
		ps.pending[name] = nil
		ps.invokes++
		if est.Chosen != e.Mode {
			ps.t.Errorf("estimate chose %v but the invocation decided %v", est.Chosen, e.Mode)
		}
		if !est.Considered[est.Chosen] {
			ps.t.Errorf("chosen mode %v was not among the considered candidates", est.Chosen)
		}
	}
}

// TestEstimateInvokePairing: adaptive strategies emit exactly one
// EvEstimate per EvInvoke, in order, even under fault injection.
func TestEstimateInvokePairing(t *testing.T) {
	p := testProgram(t)
	for _, s := range []Strategy{StrategyAL, StrategyAA} {
		ps := &pairingSink{t: t, pending: map[string]*Estimate{}}
		c := newTestClient(t, p, s, radio.UniformChannel(rng.New(11)), workTarget())
		c.Link.Fault = radio.NewGilbertElliott(0.25, 4)
		c.Events.Attach(ps)
		for i := 0; i < 12; i++ {
			c.NewExecution()
			if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(int32(100 + 60*i))}); err != nil {
				t.Fatalf("%v run %d: %v", s, i, err)
			}
			c.StepChannel()
		}
		if ps.invokes != 12 || ps.estimates != 12 {
			t.Errorf("%v: %d estimates / %d invocations, want 12/12", s, ps.estimates, ps.invokes)
		}
	}
}

// TestStaticPoliciesEmitNoEstimates: the static strategies predict
// nothing, so no EvEstimate appears on their streams.
func TestStaticPoliciesEmitNoEstimates(t *testing.T) {
	p := testProgram(t)
	for _, s := range []Strategy{StrategyR, StrategyI, StrategyL1} {
		count := 0
		c := newTestClient(t, p, s, radio.Fixed{Cls: radio.Class4}, workTarget())
		c.Events.Attach(eventFunc(func(e Event) {
			if e.Kind == EvEstimate {
				count++
			}
		}))
		if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(200)}); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if count != 0 {
			t.Errorf("%v emitted %d estimates, want none", s, count)
		}
	}
}

// eventFunc adapts a func to EventSink.
type eventFunc func(Event)

func (f eventFunc) Emit(e Event) { f(e) }

// TestPhaseSpansCoverInvocations: every invocation's execution phases
// (interp/native/ship/listen/download/compile) appear as EvPhase
// spans nested inside the invocation's [At, At+Time] window, and the
// stream is ordered on the simulated clock.
func TestPhaseSpansCoverInvocations(t *testing.T) {
	p := testProgram(t)
	var events []Event
	c := newTestClient(t, p, StrategyAA, radio.UniformChannel(rng.New(5)), workTarget())
	c.Link.Fault = radio.NewGilbertElliott(0.3, 4)
	c.Events.Attach(eventFunc(func(e Event) { events = append(events, e) }))
	for i := 0; i < 10; i++ {
		c.NewExecution()
		if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(int32(120 + 70*i))}); err != nil {
			t.Fatal(err)
		}
		c.StepChannel()
	}

	phases := map[Phase]int{}
	var invokes, spans int
	for _, e := range events {
		switch e.Kind {
		case EvPhase:
			spans++
			phases[e.Phase]++
			if e.Time < 0 {
				t.Errorf("phase %v span with negative duration %v", e.Phase, e.Time)
			}
			if e.At < 0 || e.At+e.Time > c.Clock {
				t.Errorf("phase %v span [%v, %v] outside the run [0, %v]",
					e.Phase, e.At, e.At+e.Time, c.Clock)
			}
		case EvInvoke:
			invokes++
			if e.Time < 0 || e.At < 0 {
				t.Errorf("invocation span [%v, +%v] malformed", e.At, e.Time)
			}
		}
	}
	if invokes != 10 {
		t.Fatalf("%d invocations recorded, want 10", invokes)
	}
	if spans == 0 {
		t.Fatal("no phase spans recorded")
	}
	// This workload must exercise at least a local phase; under the
	// burst fault the remote machinery (ship or listen) shows up too.
	if phases[PhaseInterp]+phases[PhaseNative] == 0 {
		t.Errorf("no local execution phases: %v", phases)
	}
}

// TestTraceUnderFallbackRetryBreaker scripts an outage and checks the
// event stream tells the full story: the fallback invocations are
// marked, retries and breaker transitions appear between them, and
// the Trace sink's per-invocation records agree with Stats.
func TestTraceUnderFallbackRetryBreaker(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyR, radio.Fixed{Cls: radio.Class4}, workTarget())
	// Transfers 0-2 lost: three fallbacks open the threshold-3 breaker;
	// after the cooldown a probe heals it and offloading resumes.
	fault := &scriptedFault{down: func(i int) bool { return i < 3 }}
	c.Link.Fault = fault
	c.Breaker.Threshold = 3
	c.Breaker.Cooldown = 0.2
	c.Breaker.MaxCooldown = 0.2

	var kinds []EventKind
	c.Events.Attach(eventFunc(func(e Event) { kinds = append(kinds, e.Kind) }))
	tr := &Trace{}
	c.Events.Attach(tr)

	args := []vm.Slot{vm.IntSlot(150)}
	for i := 0; i < 3; i++ {
		if _, err := c.Invoke(context.Background(), "App", "work", args); err != nil {
			t.Fatal(err)
		}
	}
	c.Clock += 1 // past the cooldown: next invocation probes
	for i := 0; i < 2; i++ {
		if _, err := c.Invoke(context.Background(), "App", "work", args); err != nil {
			t.Fatal(err)
		}
	}

	if len(tr.Records) != 5 {
		t.Fatalf("trace has %d records, want 5", len(tr.Records))
	}
	for i, r := range tr.Records {
		wantFellBack := i < 3
		if r.FellBack != wantFellBack {
			t.Errorf("record %d: FellBack = %v, want %v", i, r.FellBack, wantFellBack)
		}
		if r.Method != "App.work" {
			t.Errorf("record %d: method %q", i, r.Method)
		}
	}
	count := func(k EventKind) int {
		n := 0
		for _, x := range kinds {
			if x == k {
				n++
			}
		}
		return n
	}
	if count(EvFallback) != c.Stats.Fallbacks || c.Stats.Fallbacks != 3 {
		t.Errorf("fallback events %d, stats %d, want 3", count(EvFallback), c.Stats.Fallbacks)
	}
	if count(EvLinkDown) != 1 || count(EvLinkUp) != 1 {
		t.Errorf("breaker transitions down=%d up=%d, want 1/1", count(EvLinkDown), count(EvLinkUp))
	}
	if count(EvProbe) == 0 {
		t.Error("no probe event before the breaker closed")
	}
	// Ordering: the breaker opens before it closes, and the probe
	// precedes the close.
	idx := func(k EventKind) int {
		for i, x := range kinds {
			if x == k {
				return i
			}
		}
		return -1
	}
	if !(idx(EvLinkDown) < idx(EvProbe) && idx(EvProbe) < idx(EvLinkUp)) {
		t.Errorf("event order down=%d probe=%d up=%d not monotone",
			idx(EvLinkDown), idx(EvProbe), idx(EvLinkUp))
	}
}
