package core_test

import (
	"context"

	"fmt"
	"log"

	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/lang"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// Example shows the full offloading workflow: compile an MJ program
// with a potential method, profile it, and let the AA strategy decide
// where to execute and compile.
func Example() {
	const src = `
class App {
  potential static int sumsq(int n) {
    int s = 0;
    for (int i = 1; i <= n; i = i + 1) { s = s + i * i; }
    return s;
  }
}`
	prog, err := lang.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	target := &core.Target{
		Class:  "App",
		Method: "sumsq",
		MakeArgs: func(v *vm.VM, size int, r *rng.RNG) ([]vm.Slot, error) {
			return []vm.Slot{vm.IntSlot(int32(size))}, nil
		},
		SizeOf: func(v *vm.VM, args []vm.Slot) (float64, error) {
			return float64(args[0].I), nil
		},
		ProfileSizes: []int{100, 200, 400, 800, 1600},
	}

	profiler := &core.Profiler{
		Prog:        prog,
		ClientModel: energy.MicroSPARCIIep(),
		ServerModel: energy.ServerSPARC(),
		Seed:        1,
	}
	prof, err := profiler.ProfileTarget(target)
	if err != nil {
		log.Fatal(err)
	}

	server := core.NewServer(prog)
	client := core.New(core.ClientConfig{
		ID: "pda", Prog: prog, Server: server,
		Channel: radio.Fixed{Cls: radio.Class4}, Strategy: core.StrategyAA, Seed: 7,
	})
	if err := client.Register(target, prof); err != nil {
		log.Fatal(err)
	}

	res, err := client.Invoke(context.Background(), "App", "sumsq", []vm.Slot{vm.IntSlot(1000)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result:", res.I)
	fmt.Println("offloaded:", client.Stats.ModeCounts[core.ModeRemote] == 1)
	// Output:
	// result: 333833500
	// offloaded: true
}
