package core

import (
	"context"
	"fmt"
	"testing"

	"greenvm/internal/energy"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// scriptedFault loses transfers while down() says so — a controllable
// outage for breaker tests.
type scriptedFault struct {
	down func(transfer int) bool
	n    int
}

func (f *scriptedFault) Judge(dir radio.Direction, r *rng.RNG) radio.Verdict {
	f.n++
	return radio.Verdict{Lost: f.down(f.n - 1)}
}

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker()
	b.Threshold = 3
	b.Cooldown = 1
	b.MaxCooldown = 4

	if b.State() != BreakerClosed {
		t.Fatal("breaker should start closed")
	}
	b.RecordFailure(0)
	b.RecordFailure(0)
	if b.State() != BreakerClosed {
		t.Error("two losses must not open a threshold-3 breaker")
	}
	if !b.RecordFailure(0) {
		t.Error("third loss should report the open transition")
	}
	if b.State() != BreakerOpen {
		t.Fatal("breaker should be open")
	}
	// Before the cooldown: still open. After: half-open.
	if b.Next(0.5) != BreakerOpen {
		t.Error("cooldown not elapsed, breaker must stay open")
	}
	if b.Next(1.5) != BreakerHalfOpen {
		t.Error("breaker should go half-open after the cooldown")
	}
	// Failed probe doubles the cooldown.
	if !b.RecordFailure(1.5) {
		t.Error("failed probe should report re-opening")
	}
	if b.Next(2.5) != BreakerOpen {
		t.Error("doubled cooldown (2s) must hold at +1s")
	}
	if b.Next(4) != BreakerHalfOpen {
		t.Error("breaker should go half-open after the doubled cooldown")
	}
	// Successful probe closes it and resets the loss run.
	if !b.RecordSuccess() {
		t.Error("successful probe should report the close transition")
	}
	if b.State() != BreakerClosed || b.ConsecutiveLosses() != 0 {
		t.Error("breaker should be closed with the loss run reset")
	}
}

func TestBreakerCooldownCapped(t *testing.T) {
	b := NewBreaker()
	b.Threshold = 1
	b.Cooldown = 1
	b.MaxCooldown = 2
	now := energy.Seconds(0)
	b.RecordFailure(now)
	for i := 0; i < 5; i++ {
		// Walk time to the half-open point, fail the probe.
		now += 100
		if b.Next(now) != BreakerHalfOpen {
			t.Fatalf("round %d: expected half-open", i)
		}
		b.RecordFailure(now)
		if b.curCooldown > b.MaxCooldown {
			t.Fatalf("cooldown %v exceeds cap %v", b.curCooldown, b.MaxCooldown)
		}
	}
}

// TestBreakerOpensAndRecovers drives a client through an outage and a
// recovery: the breaker opens after Threshold consecutive losses
// (EvLinkDown), stops remote attempts while down, then a half-open
// probe restores remote execution (EvLinkUp).
func TestBreakerOpensAndRecovers(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyR, radio.Fixed{Cls: radio.Class4}, workTarget())
	// Outage for the first 3 transfers, then a healthy link. At this
	// size a retry is priced above local interpretation, so each
	// invocation attempts the exchange exactly once.
	fault := &scriptedFault{down: func(i int) bool { return i < 3 }}
	c.Link.Fault = fault
	c.Breaker.Threshold = 3
	c.Breaker.Cooldown = 0.2
	c.Breaker.MaxCooldown = 0.2

	args := []vm.Slot{vm.IntSlot(150)}
	// Three invocations: each loses its send, falls back locally, and
	// the third consecutive loss opens the breaker.
	for i := 0; i < 3; i++ {
		if _, err := c.Invoke(context.Background(), "App", "work", args); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats.LinkDowns != 1 {
		t.Fatalf("LinkDowns = %d, want 1 (stats: %+v)", c.Stats.LinkDowns, c.Stats)
	}
	if c.Stats.Fallbacks != 3 {
		t.Errorf("Fallbacks = %d, want 3", c.Stats.Fallbacks)
	}
	if c.Breaker.State() != BreakerOpen {
		t.Fatalf("breaker state %v, want open", c.Breaker.State())
	}

	// While open (cooldown not elapsed) remote attempts cost nothing:
	// no new exchanges happen on the link.
	exBefore := c.Link.Exchanges
	if _, err := c.Invoke(context.Background(), "App", "work", args); err != nil {
		t.Fatal(err)
	}
	if c.Link.Exchanges != exBefore {
		t.Errorf("open breaker still produced %d exchanges", c.Link.Exchanges-exBefore)
	}

	// Walk the clock past the cooldown; the next invocation probes,
	// the link has healed, and remote execution resumes.
	c.Clock += 1
	if _, err := c.Invoke(context.Background(), "App", "work", args); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Probes == 0 {
		t.Error("expected a half-open probe")
	}
	if c.Stats.LinkUps != 1 {
		t.Errorf("LinkUps = %d, want 1", c.Stats.LinkUps)
	}
	if c.Breaker.State() != BreakerClosed {
		t.Errorf("breaker state %v, want closed", c.Breaker.State())
	}
}

// TestRetriesChargedAndCounted: a response-loss fault makes the first
// attempt fail after spending transmit energy; the retry succeeds and
// is visible in Stats, and both the timeout listen and backoff are
// charged. Size 3000 with a short timeout keeps the priced retry
// (remote + one timeout-listen risk) below local interpretation.
func TestRetriesChargedAndCounted(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyR, radio.Fixed{Cls: radio.Class4}, workTarget())
	c.Timeout = 0.001
	// Lose exactly the first reception; everything after succeeds.
	fault := &scriptedFault{down: func(i int) bool { return i == 1 }}
	c.Link.Fault = fault

	ref := newTestClient(t, p, StrategyR, radio.Fixed{Cls: radio.Class4}, workTarget())
	ref.Timeout = 0.001
	args := []vm.Slot{vm.IntSlot(3000)}
	res, err := c.Invoke(context.Background(), "App", "work", args)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Invoke(context.Background(), "App", "work", args)
	if err != nil {
		t.Fatal(err)
	}
	if res.I != want.I {
		t.Errorf("retried result %d, want %d", res.I, want.I)
	}
	if c.Stats.Retries != 1 {
		t.Errorf("Retries = %d, want 1", c.Stats.Retries)
	}
	if c.Stats.Fallbacks != 0 {
		t.Errorf("Fallbacks = %d; the retry should have succeeded remotely", c.Stats.Fallbacks)
	}
	if c.Stats.ModeCounts[ModeRemote] != 1 {
		t.Errorf("mode counts %v", c.Stats.ModeCounts)
	}
	// The faulty run must cost strictly more energy and time than the
	// fault-free reference: a wasted transmit, the timeout listen, and
	// the backoff listen all add up.
	if c.Energy() <= ref.Energy() {
		t.Errorf("faulty energy %v <= fault-free %v", c.Energy(), ref.Energy())
	}
	if c.Clock <= ref.Clock {
		t.Errorf("faulty clock %v <= fault-free %v", c.Clock, ref.Clock)
	}
	minExtra := energy.Energy(c.Link.Chip.RxPower(), c.Timeout)
	if extra := c.Energy() - ref.Energy(); extra < minExtra {
		t.Errorf("extra energy %v less than one timeout listen %v", extra, minExtra)
	}
}

// TestRetryBudgetExhausted: under a dead link the executor retries at
// most MaxRetries times, then falls back locally.
func TestRetryBudgetExhausted(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyR, radio.Fixed{Cls: radio.Class4}, workTarget())
	c.Link.Fault = radio.IIDLoss{P: 1}
	c.Breaker.Threshold = 100 // keep the breaker out of this test
	c.MaxRetries = 2
	c.Timeout = 0.001 // keep retries priced below local interpretation
	if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(3000)}); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Retries != 2 {
		t.Errorf("Retries = %d, want exactly MaxRetries (2)", c.Stats.Retries)
	}
	if c.Stats.Fallbacks == 0 {
		t.Error("expected a local fallback after the budget ran out")
	}
}

// TestRetrySkippedWhenLocalCheaper: when the estimator prices a retry
// above the best local mode, the executor falls back immediately.
func TestRetrySkippedWhenLocalCheaper(t *testing.T) {
	p := testProgram(t)
	// Class 1: 5.88 W transmit makes remote far costlier than local
	// interpretation for a small input.
	c := newTestClient(t, p, StrategyR, radio.Fixed{Cls: radio.Class1}, workTarget())
	c.Link.Fault = radio.IIDLoss{P: 1}
	c.Breaker.Threshold = 100
	if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(60)}); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Retries != 0 {
		t.Errorf("Retries = %d; a hopelessly expensive retry should be skipped", c.Stats.Retries)
	}
	if c.Stats.Fallbacks == 0 {
		t.Error("expected an immediate local fallback")
	}
}

// TestAllStrategiesSurviveBurstOutage is the robustness acceptance
// check at the core level: under a 20% outage with mean burst 5 every
// strategy completes every invocation with the correct result.
func TestAllStrategiesSurviveBurstOutage(t *testing.T) {
	p := testProgram(t)
	ref := vm.New(p, energy.MicroSPARCIIep())
	for _, s := range Strategies {
		c := newTestClient(t, p, s, radio.UniformChannel(rng.New(21)), workTarget())
		c.Link.Fault = radio.NewGilbertElliott(0.2, 5)
		for i := 0; i < 20; i++ {
			c.NewExecution()
			n := int32(100 + 40*i)
			res, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(n)})
			if err != nil {
				t.Fatalf("%v run %d: %v", s, i, err)
			}
			ref.ResetRun(true)
			want, err := ref.InvokeByName("App", "work", []vm.Slot{vm.IntSlot(n)})
			if err != nil {
				t.Fatal(err)
			}
			if res.I != want.I {
				t.Fatalf("%v run %d: result %d, want %d", s, i, res.I, want.I)
			}
			c.StepChannel()
		}
		if c.Energy() <= 0 || c.Clock <= 0 {
			t.Errorf("%v: no energy/time accounted", s)
		}
	}
}

// TestFaultsStrictlyIncreaseCost: with identical seeds, a faulty run
// of the offloading strategy costs strictly more energy and time than
// the fault-free run — every loss leaves a wasted transmit plus a
// timeout listen behind. (The adaptive strategies keep this workload
// local on a Class-4 channel, so only R exercises the radio here;
// their behaviour under outage is covered by the survival test.)
func TestFaultsStrictlyIncreaseCost(t *testing.T) {
	p := testProgram(t)
	for _, s := range []Strategy{StrategyR} {
		run := func(fault radio.FaultModel) (energy.Joules, energy.Seconds) {
			c := newTestClient(t, p, s, radio.Fixed{Cls: radio.Class4}, workTarget())
			c.Link.Fault = fault
			for i := 0; i < 10; i++ {
				c.NewExecution()
				if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(400)}); err != nil {
					t.Fatalf("%v: %v", s, err)
				}
			}
			return c.Energy(), c.Clock
		}
		eClean, tClean := run(nil)
		eFault, tFault := run(radio.NewGilbertElliott(0.25, 4))
		if eFault <= eClean {
			t.Errorf("%v: faulty energy %v <= clean %v", s, eFault, eClean)
		}
		if tFault <= tClean {
			t.Errorf("%v: faulty time %v <= clean %v", s, tFault, tClean)
		}
	}
}

// TestStatsCarryRadioTelemetry: the EvInvoke stream surfaces link
// counters through the Stats sink.
func TestStatsCarryRadioTelemetry(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyR, radio.Fixed{Cls: radio.Class4}, workTarget())
	c.Link.Fault = radio.ResponseLoss{P: 0.5}
	for i := 0; i < 6; i++ {
		c.NewExecution()
		if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(150)}); err != nil {
			t.Fatal(err)
		}
	}
	tel := c.Stats.Radio
	if tel.Exchanges == 0 {
		t.Fatal("Stats.Radio carries no exchanges")
	}
	if tel != c.Link.Telemetry() {
		t.Errorf("Stats.Radio %+v diverges from the link %+v", tel, c.Link.Telemetry())
	}
	if tel.Losses == 0 {
		t.Error("expected losses under a 50% response-loss fault")
	}
}

// TestDeterministicUnderFaults: identical seeds with fault injection
// give identical energy, clock and stats.
func TestDeterministicUnderFaults(t *testing.T) {
	p := testProgram(t)
	run := func() (energy.Joules, energy.Seconds, Stats) {
		c := newTestClient(t, p, StrategyAA, radio.UniformChannel(rng.New(5)), workTarget())
		c.Link.Fault = radio.Compose(radio.NewGilbertElliott(0.3, 4), radio.SlowServer{P: 0.1, Stall: 0.05})
		for i := 0; i < 15; i++ {
			c.NewExecution()
			if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(int32(100 + 50*i))}); err != nil {
				t.Fatal(err)
			}
			c.StepChannel()
		}
		return c.Energy(), c.Clock, *c.Stats
	}
	e1, t1, s1 := run()
	e2, t2, s2 := run()
	if e1 != e2 || t1 != t2 {
		t.Errorf("energy/time diverged: (%v, %v) vs (%v, %v)", e1, t1, e2, t2)
	}
	if fmt.Sprintf("%+v", s1) != fmt.Sprintf("%+v", s2) {
		t.Errorf("stats diverged: %+v vs %+v", s1, s2)
	}
}
