package core

import (
	"errors"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
	"greenvm/internal/vm"
)

// Executor owns the execution paths a Decision can select —
// interpreted, JIT-compiled at a level, or offloaded to the server —
// plus the machinery they share: compiled-body management (via the
// CacheManager), the ambient execution level, compiler-classes
// loading, and the connection-loss fallback. It carries no decision
// logic; the Policy decides, the Executor does.
type Executor struct {
	// Cache manages compiled bodies and their linking/eviction.
	Cache *CacheManager

	c              *Client
	levelStack     []jit.Level // 0 = interpret
	compilerLoaded bool
}

func newExecutor(c *Client) *Executor {
	return &Executor{c: c, Cache: NewCacheManager(c.Events)}
}

// CompilerLoaded reports whether the compiler classes are loaded in
// the current execution (their load energy is charged once per
// execution that compiles locally).
func (x *Executor) CompilerLoaded() bool { return x.compilerLoaded }

// NewExecution drops per-execution state: linked bodies and the
// loaded compiler classes.
func (x *Executor) NewExecution() {
	x.Cache.UnlinkAll()
	x.compilerLoaded = false
}

// currentLevel is the ambient execution level (0 = interpret).
func (x *Executor) currentLevel() jit.Level {
	if len(x.levelStack) == 0 {
		return 0
	}
	return x.levelStack[len(x.levelStack)-1]
}

// dispatch picks the body for any method executed locally: the one
// compiled at the ambient level, when available.
func (x *Executor) dispatch(m *bytecode.Method) *isa.Code {
	lv := x.currentLevel()
	if lv == 0 || !x.Cache.Linked(m, lv) {
		return nil
	}
	return x.Cache.Body(m, lv)
}

// planLinked reports whether m's whole plan is linked at the level in
// the current execution.
func (x *Executor) planLinked(m *bytecode.Method, lv jit.Level) bool {
	for _, mm := range x.c.plans[m] {
		if !x.Cache.Linked(mm, lv) {
			return false
		}
	}
	return true
}

// Run executes m in the given mode, falling back to the policy's best
// local mode on connection loss or an admission-control rejection.
func (x *Executor) Run(mode Mode, m *bytecode.Method, t *Target, size float64, args []vm.Slot) (vm.Slot, bool, error) {
	c := x.c
	if mode == ModeRemote {
		res, err := x.remoteWithRetries(m, t, size, args)
		if err == nil {
			return res, false, nil
		}
		if !errors.Is(err, radio.ErrConnectionLost) && !errors.Is(err, ErrServerBusy) {
			return vm.Slot{}, false, err
		}
		local := c.Policy.BestLocalMode(&InvokeContext{Method: m, Prof: c.profiles[m], Size: size, Env: c})
		res, _, err = x.Run(local, m, t, size, args)
		return res, true, err
	}
	if mode.IsCompiled() {
		if err := x.ensurePlanCompiled(m, mode.Level()); err != nil {
			return vm.Slot{}, false, err
		}
	}
	c.syncClock()
	start := c.Clock
	key := memoKey{method: m.QName(), mode: mode, inputKey: c.MemoInputKey}
	if c.Memo != nil {
		if d, ok := c.Memo.local[key]; ok {
			c.VM.Acct.Apply(d)
			c.Events.Emit(Event{Kind: EvMemoHit, Method: m, Mode: mode, At: c.Clock})
			c.syncClock()
			x.emitLocalPhase(m, mode, start)
			return vm.Slot{}, false, nil
		}
	}
	snap := c.VM.Acct.Snapshot()
	x.levelStack = append(x.levelStack, levelOf(mode))
	res, err := c.VM.Invoke(m, args)
	x.levelStack = x.levelStack[:len(x.levelStack)-1]
	if c.Memo != nil && err == nil {
		c.Memo.local[key] = c.VM.Acct.DeltaSince(snap)
	}
	if err == nil {
		c.syncClock()
		x.emitLocalPhase(m, mode, start)
	}
	return res, false, err
}

// emitLocalPhase emits the interpret/native timeline span of one
// local execution, [start, Clock].
func (x *Executor) emitLocalPhase(m *bytecode.Method, mode Mode, start energy.Seconds) {
	c := x.c
	ph, lv := PhaseInterp, jit.Level(0)
	if mode.IsCompiled() {
		ph, lv = PhaseNative, mode.Level()
	}
	c.Events.Emit(Event{Kind: EvPhase, Phase: ph, Method: m, Mode: mode, Level: lv,
		At: start, Time: c.Clock - start})
}

func levelOf(mode Mode) jit.Level {
	if mode.IsCompiled() {
		return mode.Level()
	}
	return 0
}

// remoteWithRetries drives the offload attempt loop. The breaker is
// consulted first: a Down link costs nothing and fails over locally
// at once. Each lost attempt pays the paper's §3.2 timeout listen;
// retries are attempted only while the retry budget lasts, the
// estimator still prices a retry below the best local mode, and the
// breaker has not opened — and each retry first pays an
// exponentially growing backoff listen window.
func (x *Executor) remoteWithRetries(m *bytecode.Method, t *Target, size float64, args []vm.Slot) (vm.Slot, error) {
	c := x.c
	if !c.RemoteAvailable() {
		return vm.Slot{}, radio.ErrConnectionLost
	}
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = c.Timeout
	}
	ctx := c.invokeCtx()
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return vm.Slot{}, err
		}
		res, err := x.remoteExecute(m, t, size, args)
		if err == nil {
			c.noteRemoteSuccessOn(c.lastServed)
			return res, nil
		}
		if errors.Is(err, ErrServerBusy) {
			// The server shed the request at admission: the exchange
			// is over (arguments shipped, busy frame received). No
			// timeout listen, no breaker strike, no retry — the caller
			// falls back locally and the busy estimate raises the
			// price of the next offload. The shed is attributed to the
			// backend named in the busy frame, falling back to the
			// placement hint the request carried.
			backend := c.lastHint
			var busy *BusyError
			if errors.As(err, &busy) && busy.Backend != "" {
				backend = busy.Backend
			}
			c.Clock += c.Link.Control(busyFrameBytes)
			c.noteServerBusyOn(backend)
			c.Events.Emit(Event{Kind: EvShed, Method: m, At: c.Clock, Backend: backend, Radio: c.Link.Telemetry()})
			return vm.Slot{}, err
		}
		if !errors.Is(err, radio.ErrConnectionLost) {
			return vm.Slot{}, err
		}
		// Paper §3.2: when the result is not obtained within the time
		// threshold, connectivity is considered lost. A loss the pool
		// attributed to one backend (BackendError) strikes only that
		// backend's breaker, so the availability check below still sees
		// the surviving backends — and the retry re-places the
		// invocation on one of them (failover) instead of falling
		// straight back to local.
		failed := ""
		var be *BackendError
		if errors.As(err, &be) {
			failed = be.Backend
		}
		x.listen(m, c.Timeout)
		c.noteRemoteFailureOn(failed)
		if attempt >= c.MaxRetries || !c.retryWorthwhile(m, size) || !c.RemoteAvailable() || ctx.Err() != nil {
			return vm.Slot{}, err
		}
		// Back off before re-attempting, receiver up (the client keeps
		// listening for the base station), then retry with real
		// transmit energy.
		x.listen(m, backoff)
		backoff *= 2
		c.Events.Emit(Event{Kind: EvRetry, Method: m, At: c.Clock, Radio: c.Link.Telemetry()})
		if failed != "" {
			if hint := c.placementHint(); hint != "" && hint != failed {
				c.Events.Emit(Event{Kind: EvFailover, Method: m, At: c.Clock, From: failed, Backend: hint})
			}
		}
	}
}

// listen charges one receiver-up window and emits its timeline span.
func (x *Executor) listen(m *bytecode.Method, d energy.Seconds) {
	c := x.c
	start := c.Clock
	c.Link.Listen(d)
	c.Clock += d
	c.Events.Emit(Event{Kind: EvPhase, Phase: PhaseListen, Method: m, At: start, Time: d})
}

// remoteExecute offloads one invocation (Fig 4): serialize arguments,
// transmit, power down for the estimated server time, wake, receive
// and deserialize the result. The whole exchange is one PhaseShip
// timeline span; a lost exchange emits it with FellBack set.
func (x *Executor) remoteExecute(m *bytecode.Method, t *Target, size float64, args []vm.Slot) (res vm.Slot, err error) {
	c := x.c
	c.syncClock()
	shipStart := c.Clock
	defer func() {
		c.syncClock()
		c.Events.Emit(Event{Kind: EvPhase, Phase: PhaseShip, Method: m, Mode: ModeRemote,
			At: shipStart, Time: c.Clock - shipStart, FellBack: err != nil})
	}()
	prof := c.profiles[m]
	key := memoKey{method: m.QName(), mode: ModeRemote, inputKey: c.MemoInputKey}
	if c.Memo != nil {
		if ent, ok := c.Memo.remote[key]; ok {
			c.Events.Emit(Event{Kind: EvMemoHit, Method: m, Mode: ModeRemote, At: c.Clock})
			return x.replayRemote(prof, size, ent)
		}
	}
	argBytes, err := c.VM.Heap.EncodeArgs(m, args)
	if err != nil {
		return vm.Slot{}, err
	}
	c.VM.ChargeSerialization(len(argBytes))
	c.syncClock()

	// On a lost transfer the returned time is the stall spent before
	// detecting the loss — it still advances the clock.
	tTx, err := c.Link.Send(len(argBytes))
	c.Clock += tTx
	if err != nil {
		return vm.Slot{}, err
	}

	estServ := energy.Seconds(prof.ServerTime.Eval(size))
	if estServ < 0 {
		estServ = 0
	}
	reqTime := c.Clock
	var resBytes []byte
	var servTime energy.Seconds
	c.lastHint, c.lastServed = "", ""
	if mr, ok := c.Server.(MultiRemote); ok {
		// Multi-backend: send the pick-cheapest hint, learn who
		// actually served (the pool's placement policy may override).
		hint := c.placementHint()
		c.lastHint = hint
		var servedBy string
		resBytes, servTime, _, servedBy, err = mr.ExecuteOn(c.invokeCtx(), hint, c.ID,
			t.Class, t.Method, argBytes, reqTime, reqTime+estServ)
		c.lastServed = servedBy
		if err == nil && servedBy != "" {
			c.Events.Emit(Event{Kind: EvPlace, Method: m, At: reqTime, Backend: servedBy})
		}
	} else {
		resBytes, servTime, _, err = c.Server.Execute(c.invokeCtx(), c.ID,
			t.Class, t.Method, argBytes, reqTime, reqTime+estServ)
	}
	if err != nil {
		return vm.Slot{}, err
	}

	// Power-down while the server computes: the processor, memory and
	// receiver sleep for the estimated duration, drawing only leakage.
	sleep := estServ
	if servTime < sleep {
		// Server finished early; the result waits in the status table
		// until the client wakes (it still sleeps the full estimate).
	} else if servTime > sleep {
		// Early re-activation penalty: the client wakes before the
		// result is ready and listens with the receiver up.
		c.Link.Listen(servTime - sleep)
	}
	c.VM.Acct.AddLeakage(sleep)
	elapsed := sleep
	if servTime > elapsed {
		elapsed = servTime
	}
	c.Clock += elapsed

	tRx, err := c.Link.Recv(len(resBytes))
	c.Clock += tRx
	if err != nil {
		return vm.Slot{}, err
	}

	c.VM.ChargeSerialization(len(resBytes))
	deserSnap := c.VM.Acct.Snapshot()
	res, err = c.VM.Heap.DecodeValue(m.Ret.Kind, resBytes)
	if err != nil {
		return vm.Slot{}, err
	}
	if c.Memo != nil {
		c.Memo.remote[key] = remoteEntry{
			txBytes:    len(argBytes),
			rxBytes:    len(resBytes),
			servTime:   servTime,
			deserDelta: c.VM.Acct.DeltaSince(deserSnap),
		}
	}
	c.syncClock()
	return res, nil
}

// replayRemote re-prices a previously executed offload from its
// recorded byte counts and server time; transmit energy reflects the
// channel condition of this run, not the recorded one.
func (x *Executor) replayRemote(prof *Profile, size float64, ent remoteEntry) (vm.Slot, error) {
	c := x.c
	c.VM.ChargeSerialization(ent.txBytes)
	c.syncClock()
	tTx, err := c.Link.Send(ent.txBytes)
	c.Clock += tTx
	if err != nil {
		return vm.Slot{}, err
	}

	estServ := energy.Seconds(prof.ServerTime.Eval(size))
	if estServ < 0 {
		estServ = 0
	}
	sleep := estServ
	if ent.servTime > sleep {
		c.Link.Listen(ent.servTime - sleep)
	}
	c.VM.Acct.AddLeakage(sleep)
	elapsed := sleep
	if ent.servTime > elapsed {
		elapsed = ent.servTime
	}
	c.Clock += elapsed

	tRx, err := c.Link.Recv(ent.rxBytes)
	c.Clock += tRx
	if err != nil {
		return vm.Slot{}, err
	}
	c.VM.ChargeSerialization(ent.rxBytes)
	c.VM.Acct.Apply(ent.deserDelta)
	c.syncClock()
	return vm.Slot{}, nil
}

// ensurePlanCompiled makes every method of m's plan executable at the
// level, compiling locally or — when the policy says so — downloading
// pre-compiled bodies.
func (x *Executor) ensurePlanCompiled(m *bytecode.Method, lv jit.Level) error {
	c := x.c
	for _, mm := range c.plans[m] {
		if x.Cache.Linked(mm, lv) {
			continue
		}
		if c.Policy.Download(c, mm, lv) {
			if err := x.downloadBody(mm, lv); err == nil {
				c.noteRemoteSuccess()
				continue
			} else if errors.Is(err, ErrServerBusy) {
				// The server shed the download; compile locally and
				// raise the busy estimate.
				backend := ""
				var busy *BusyError
				if errors.As(err, &busy) {
					backend = busy.Backend
				}
				c.Clock += c.Link.Control(busyFrameBytes)
				c.noteServerBusyOn(backend)
				c.Events.Emit(Event{Kind: EvShed, Method: mm, Level: lv, At: c.Clock, Backend: backend, Radio: c.Link.Telemetry()})
			} else if !errors.Is(err, radio.ErrConnectionLost) {
				return err
			} else {
				// Connection lost: fall through to local compilation.
				c.noteRemoteFailure()
				c.Events.Emit(Event{Kind: EvFallback, Method: mm, Level: lv, At: c.Clock, Radio: c.Link.Telemetry()})
			}
		}
		if err := x.compileLocally(mm, lv); err != nil {
			return err
		}
	}
	c.syncClock()
	return nil
}

// downloadBody fetches a pre-compiled body from the server. A body
// already fetched in a previous execution is re-downloaded (the fresh
// classloader has no native code), but the simulator reuses the
// artifact.
func (x *Executor) downloadBody(mm *bytecode.Method, lv jit.Level) (err error) {
	c := x.c
	c.syncClock()
	dlStart := c.Clock
	defer func() {
		c.syncClock()
		c.Events.Emit(Event{Kind: EvPhase, Phase: PhaseDownload, Method: mm, Level: lv,
			At: dlStart, Time: c.Clock - dlStart, FellBack: err != nil})
	}()
	tTx, err := c.Link.Send(64)
	c.Clock += tTx
	if err != nil {
		return err
	}
	code := x.Cache.Body(mm, lv)
	size := 0
	if code != nil {
		size = code.SizeBytes()
	} else {
		code, size, err = c.Server.CompiledBody(c.invokeCtx(), mm.QName(), lv)
		if err != nil {
			return err
		}
		c.VM.InstallCode(code)
		x.Cache.Install(mm, lv, code)
	}
	tRx, err := c.Link.Recv(size)
	c.Clock += tRx
	if err != nil {
		return err
	}
	// Linking the downloaded code into the VM.
	c.VM.ChargeSerialization(size)
	x.Cache.Link(mm, lv)
	c.syncClock()
	c.Events.Emit(Event{Kind: EvRemoteCompile, Method: mm, Level: lv, At: c.Clock})
	return nil
}

// compileLocally runs the JIT on the client, charging its energy (and
// the once-per-execution compiler-classes load). Re-compilations in
// later executions replay the recorded charges without re-running the
// JIT.
func (x *Executor) compileLocally(mm *bytecode.Method, lv jit.Level) error {
	c := x.c
	c.syncClock()
	start := c.Clock
	if !x.compilerLoaded {
		jit.ChargeCompilerLoad(c.VM.Acct)
		x.compilerLoaded = true
	}
	if d, ok := x.Cache.Delta(mm, lv); ok {
		c.VM.Acct.Apply(d)
	} else {
		snap := c.VM.Acct.Snapshot()
		code, st, err := jit.CompileCached(c.Prog, mm, lv)
		if err != nil {
			return err
		}
		st.Charge(c.VM.Acct)
		c.VM.InstallCode(code)
		x.Cache.Install(mm, lv, code)
		x.Cache.RecordDelta(mm, lv, c.VM.Acct.DeltaSince(snap))
	}
	x.Cache.Link(mm, lv)
	c.syncClock()
	c.Events.Emit(Event{Kind: EvPhase, Phase: PhaseCompile, Method: mm, Level: lv,
		At: start, Time: c.Clock - start})
	c.Events.Emit(Event{Kind: EvLocalCompile, Method: mm, Level: lv, At: c.Clock})
	return nil
}
