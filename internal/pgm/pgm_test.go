package pgm

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundtrip(t *testing.T) {
	im := Synthetic(37, 23, 5)
	var buf bytes.Buffer
	if err := Encode(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != im.W || got.H != im.H {
		t.Fatalf("size %dx%d, want %dx%d", got.W, got.H, im.W, im.H)
	}
	for i := range im.Pix {
		if got.Pix[i] != im.Pix[i] {
			t.Fatalf("pixel %d: %d != %d", i, got.Pix[i], im.Pix[i])
		}
	}
}

func TestDecodeASCII(t *testing.T) {
	src := "P2\n# a comment\n3 2\n255\n0 128 255\n10 20 30\n"
	im, err := Decode(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 128, 255, 10, 20, 30}
	for i, v := range want {
		if im.Pix[i] != v {
			t.Errorf("pix[%d] = %d, want %d", i, im.Pix[i], v)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",
		"P7\n1 1\n255\n0",
		"P5\n-3 2\n255\nxxxxxx",
		"P2\n2 2\n255\n1 2 3", // short
		"P2\nx y\n255\n",
	}
	for _, src := range cases {
		if _, err := Decode(strings.NewReader(src)); !errors.Is(err, ErrFormat) {
			t.Errorf("Decode(%q) err = %v, want ErrFormat", src, err)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(64, 64, 42)
	b := Synthetic(64, 64, 42)
	c := Synthetic(64, 64, 43)
	same := true
	diff := false
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			same = false
		}
		if a.Pix[i] != c.Pix[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed should produce identical images")
	}
	if !diff {
		t.Error("different seeds should differ")
	}
	for _, p := range a.Pix {
		if p < 0 || p > 255 {
			t.Fatalf("pixel out of range: %d", p)
		}
	}
}

func TestAtSetClamp(t *testing.T) {
	im := New(4, 4)
	im.Set(1, 1, 300)
	if im.At(1, 1) != 255 {
		t.Error("Set should clamp to 255")
	}
	im.Set(2, 2, -5)
	if im.At(2, 2) != 0 {
		t.Error("Set should clamp to 0")
	}
	im.Set(-1, 0, 9) // ignored
	if im.At(-3, -3) != im.At(0, 0) {
		t.Error("At should clamp coordinates")
	}
}
