// Package pgm reads and writes portable graymap images (the format
// the paper's Median-Filter benchmark consumes) and synthesizes
// deterministic test images for the image-processing benchmarks.
package pgm

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"greenvm/internal/rng"
)

// ErrFormat reports a malformed PGM stream.
var ErrFormat = errors.New("pgm: invalid format")

// Image is an 8-bit grayscale image. Pixels are stored row-major as
// ints for direct transfer into MJVM int arrays.
type Image struct {
	W, H int
	Pix  []int
}

// New returns a black image of the given size.
func New(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]int, w*h)}
}

// At returns the pixel at (x, y); out-of-range coordinates clamp.
func (im *Image) At(x, y int) int {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	if x >= im.W {
		x = im.W - 1
	}
	if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Set writes the pixel at (x, y), clamping the value to [0, 255].
func (im *Image) Set(x, y, v int) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = clamp(v)
}

func clamp(v int) int {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// Encode writes the image as binary PGM (P5).
func Encode(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	for _, p := range im.Pix {
		if err := bw.WriteByte(byte(clamp(p))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a binary (P5) or ASCII (P2) PGM image.
func Decode(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := nextToken(br)
	if err != nil {
		return nil, err
	}
	if magic != "P5" && magic != "P2" {
		return nil, fmt.Errorf("%w: magic %q", ErrFormat, magic)
	}
	w, err := nextInt(br)
	if err != nil {
		return nil, err
	}
	h, err := nextInt(br)
	if err != nil {
		return nil, err
	}
	maxv, err := nextInt(br)
	if err != nil {
		return nil, err
	}
	if w <= 0 || h <= 0 || maxv <= 0 || maxv > 65535 || w*h > 1<<26 {
		return nil, fmt.Errorf("%w: bad dimensions %dx%d max %d", ErrFormat, w, h, maxv)
	}
	im := New(w, h)
	if magic == "P2" {
		for i := range im.Pix {
			v, err := nextInt(br)
			if err != nil {
				return nil, err
			}
			im.Pix[i] = clamp(v * 255 / maxv)
		}
		return im, nil
	}
	// P5: a single whitespace byte separates the header from raster.
	buf := make([]byte, w*h)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("%w: short raster: %v", ErrFormat, err)
	}
	for i, b := range buf {
		im.Pix[i] = int(b) * 255 / maxv
	}
	return im, nil
}

// nextToken skips whitespace and comments and returns the next token.
func nextToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if len(tok) > 0 && err == io.EOF {
				return string(tok), nil
			}
			return "", fmt.Errorf("%w: %v", ErrFormat, err)
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

func nextInt(br *bufio.Reader) (int, error) {
	tok, err := nextToken(br)
	if err != nil {
		return 0, err
	}
	var v int
	if _, err := fmt.Sscanf(tok, "%d", &v); err != nil {
		return 0, fmt.Errorf("%w: %q is not a number", ErrFormat, tok)
	}
	return v, nil
}

// Synthetic renders a deterministic test scene — gradient background,
// rectangles, a disc and speckle noise — sized w x h. The same seed
// yields the same image.
func Synthetic(w, h int, seed uint64) *Image {
	im := New(w, h)
	r := rng.New(seed)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Pix[y*w+x] = clamp((x*255/maxi(w-1, 1) + y*128/maxi(h-1, 1)) / 2 * 2)
		}
	}
	// Rectangles.
	for i := 0; i < 3; i++ {
		x0, y0 := r.Intn(maxi(w-4, 1)), r.Intn(maxi(h-4, 1))
		rw, rh := 2+r.Intn(maxi(w/3, 1)), 2+r.Intn(maxi(h/3, 1))
		v := 30 + r.Intn(225)
		for y := y0; y < y0+rh && y < h; y++ {
			for x := x0; x < x0+rw && x < w; x++ {
				im.Pix[y*w+x] = v
			}
		}
	}
	// Disc.
	cx, cy := w/2, h/2
	rad := maxi(w, h) / 5
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy <= rad*rad {
				im.Pix[y*w+x] = 240
			}
		}
	}
	// Speckle noise on 3% of pixels.
	n := w * h / 33
	for i := 0; i < n; i++ {
		im.Pix[r.Intn(w*h)] = r.Intn(256)
	}
	return im
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
