// Benchmarks regenerating the paper's tables and figures (one
// Benchmark per table/figure, with the reproduced quantity reported
// via b.ReportMetric) plus microbenchmarks of the substrates and
// ablations of the design choices called out in DESIGN.md.
//
// The figure benches run scaled-down configurations; `go run
// ./cmd/figures` produces the full-size outputs recorded in
// EXPERIMENTS.md.
package greenvm

import (
	"context"

	"fmt"
	"net"
	"sync"
	"testing"

	"greenvm/internal/apps"
	"greenvm/internal/bytecode"
	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/experiments"
	"greenvm/internal/fleet"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
	"greenvm/internal/lang"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// Shared prepared environments (profiled once; preparation is the
// paper's offline step and must stay out of the timed region).
var (
	envOnce sync.Once
	envFE   *experiments.Env
	envSort *experiments.Env
	envErr  error
)

func preparedEnvs(b *testing.B) (*experiments.Env, *experiments.Env) {
	b.Helper()
	envOnce.Do(func() {
		envFE, envErr = experiments.Prepare(apps.FE(), 42)
		if envErr == nil {
			envSort, envErr = experiments.Prepare(apps.Sort(), 42)
		}
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envFE, envSort
}

// BenchmarkFig1EnergyModel exercises the Fig 1 accounting hot path:
// charging instruction mixes to an account.
func BenchmarkFig1EnergyModel(b *testing.B) {
	model := energy.MicroSPARCIIep()
	acct := energy.NewAccount(model)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acct.AddInstr(energy.Load, 2)
		acct.AddInstr(energy.Store, 1)
		acct.AddInstr(energy.ALUSimple, 3)
		acct.AddInstr(energy.Branch, 1)
		acct.AddMemAccess(1)
	}
	b.ReportMetric(float64(acct.Total())*1e9/float64(b.N), "nJ/op")
}

// BenchmarkFig2RadioModel exercises the Fig 2 communication model: the
// energy of a 1 KB exchange per channel class.
func BenchmarkFig2RadioModel(b *testing.B) {
	chip := radio.WCDMA()
	var sink energy.Joules
	for i := 0; i < b.N; i++ {
		cls := radio.Class1 + radio.Class(i%4)
		sink += chip.TxEnergy(1024, cls) + chip.RxEnergy(1024, cls)
	}
	b.ReportMetric(float64(sink)/float64(b.N)*1e3, "mJ/exchange")
}

// BenchmarkFig3Workloads regenerates every benchmark's input at its
// small size and verifies it against the Go reference.
func BenchmarkFig3Workloads(b *testing.B) {
	list := apps.All()
	for i := 0; i < b.N; i++ {
		a := list[i%len(list)]
		in := a.MakeInput(a.ProfileSizes[0], uint64(i))
		prog, err := a.Program()
		if err != nil {
			b.Fatal(err)
		}
		v := vm.New(prog, energy.MicroSPARCIIep())
		args, err := in.Args(v)
		if err != nil {
			b.Fatal(err)
		}
		res, err := v.InvokeByName(a.Class, a.Method, args)
		if err != nil {
			b.Fatal(err)
		}
		if err := in.Check(v, res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6StaticStrategies regenerates one Fig 6 bar group
// (single execution of fe under every static strategy) per iteration.
func BenchmarkFig6StaticStrategies(b *testing.B) {
	fe, _ := preparedEnvs(b)
	b.ResetTimer()
	var norm float64
	for i := 0; i < b.N; i++ {
		bars, err := experiments.RunFig6([]*experiments.Env{fe}, 42)
		if err != nil {
			b.Fatal(err)
		}
		norm = float64(bars[0].R[0]) / float64(bars[0].Normalizer)
	}
	b.ReportMetric(norm, "R(C4)/L1")
}

// BenchmarkFig7AdaptiveStrategies runs one scaled-down Fig 7 scenario
// (fe, uniform situation, AL, 20 executions) per iteration.
func BenchmarkFig7AdaptiveStrategies(b *testing.B) {
	fe, _ := preparedEnvs(b)
	b.ResetTimer()
	var perRun float64
	for i := 0; i < b.N; i++ {
		cell, err := experiments.RunScenario(fe, experiments.SitUniform, core.StrategyAL, 20, 42)
		if err != nil {
			b.Fatal(err)
		}
		perRun = float64(cell.Energy) / 20 * 1e3
	}
	b.ReportMetric(perRun, "mJ/execution")
}

// BenchmarkFigureGrid compares serial and parallel execution of the
// Fig 7 scenario grid (2 apps × 3 situations × 7 strategies, 20
// executions each). The outputs are byte-identical; only wall clock
// differs. Measured speedups are recorded in EXPERIMENTS.md.
func BenchmarkFigureGrid(b *testing.B) {
	fe, srt := preparedEnvs(b)
	envs := []*experiments.Env{fe, srt}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := experiments.NewRunner(workers)
			var norm float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFig7On(r, envs, 20, 42)
				if err != nil {
					b.Fatal(err)
				}
				norm = res.Strategy(experiments.SitUniform, core.StrategyAL)
			}
			b.ReportMetric(norm, "AL/L1")
		})
	}
}

// BenchmarkFleet runs a 16-client mixed-strategy fleet against the
// shared server at one and at four simulation slots: the contention is
// resolved in virtual time, so the slots change only wall-clock cost —
// the reported shed rate is identical across the sub-benchmarks.
func BenchmarkFleet(b *testing.B) {
	fe, _ := preparedEnvs(b)
	w := fleet.WorkloadOf(fe)
	for _, conc := range []int{1, 4} {
		b.Run(fmt.Sprintf("slots=%d", conc), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				spec := fleet.MixedFleet(w, 16,
					[]core.Strategy{core.StrategyR, core.StrategyAL, core.StrategyAA},
					3, core.SessionConfig{Workers: 2, QueueCap: 4}, 42)
				spec.Concurrency = conc
				res, err := fleet.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				for _, c := range res.Clients {
					if c.Err != "" {
						b.Fatalf("client %s: %s", c.ID, c.Err)
					}
				}
				rate = res.ShedRate()
			}
			b.ReportMetric(100*rate, "shed%")
		})
	}
}

// BenchmarkFig8CompilationEnergy regenerates the Fig 8 compilation
// table for the prepared apps.
func BenchmarkFig8CompilationEnergy(b *testing.B) {
	fe, srt := preparedEnvs(b)
	envs := []*experiments.Env{fe, srt}
	b.ResetTimer()
	var c4 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig8(envs)
		if err != nil {
			b.Fatal(err)
		}
		c4 = rows[0].Remote[3]
	}
	b.ReportMetric(c4, "remoteC4/localL1*100")
}

// --- Substrate microbenchmarks ---

const benchSrc = `
class B {
  static int work(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
      s = s + (i * i + 3 * i + 7) % 1000;
    }
    return s;
  }
}
`

func benchProgram(b *testing.B) *bytecode.Program {
	b.Helper()
	p, err := lang.Compile(benchSrc)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkInterpreter measures the bytecode interpreter's simulation
// throughput.
func BenchmarkInterpreter(b *testing.B) {
	p := benchProgram(b)
	v := vm.New(p, energy.MicroSPARCIIep())
	args := []vm.Slot{vm.IntSlot(1000)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.InvokeByName("B", "work", args); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(v.Steps())/float64(b.N), "bytecodes/op")
}

// BenchmarkMachineNative measures the native machine simulator.
func BenchmarkMachineNative(b *testing.B) {
	p := benchProgram(b)
	m := p.FindMethod("B", "work")
	code, _, err := jit.Compile(p, m, jit.Level2)
	if err != nil {
		b.Fatal(err)
	}
	v := vm.New(p, energy.MicroSPARCIIep())
	v.InstallCode(code)
	v.Dispatch = vm.DispatchFunc(func(mm *bytecode.Method) *isa.Code { return code })
	args := []vm.Slot{vm.IntSlot(1000)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Invoke(m, args); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(v.Mach.Steps)/float64(b.N), "instrs/op")
}

// BenchmarkJITCompile measures compilation throughput per level.
func BenchmarkJITCompile(b *testing.B) {
	p := benchProgram(b)
	m := p.FindMethod("B", "work")
	for _, lv := range []jit.Level{jit.Level1, jit.Level2, jit.Level3} {
		b.Run(lv.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := jit.Compile(p, m, lv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSerialization measures object-graph serialization of a
// 4 KB array.
func BenchmarkSerialization(b *testing.B) {
	p := benchProgram(b)
	v := vm.New(p, energy.MicroSPARCIIep())
	h, err := v.Heap.NewArray(bytecode.ElemInt, 1024)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(5)
	for i := int64(0); i < 1024; i++ {
		if err := v.Heap.SetElemI(h, i, int64(r.Intn(1<<16))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		buf, err := v.Heap.SerializeGraph(h)
		if err != nil {
			b.Fatal(err)
		}
		n = len(buf)
	}
	b.ReportMetric(float64(n), "bytes")
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationOptLevels quantifies what each JIT level buys: the
// simulated energy of one execution per level.
func BenchmarkAblationOptLevels(b *testing.B) {
	p := benchProgram(b)
	m := p.FindMethod("B", "work")
	for _, lv := range []jit.Level{jit.Level1, jit.Level2, jit.Level3} {
		code, _, err := jit.Compile(p, m, lv)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(lv.String(), func(b *testing.B) {
			v := vm.New(p, energy.MicroSPARCIIep())
			v.InstallCode(code)
			v.Dispatch = vm.DispatchFunc(func(mm *bytecode.Method) *isa.Code { return code })
			args := []vm.Slot{vm.IntSlot(1000)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := v.Invoke(m, args); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(v.Acct.Total())/float64(b.N)*1e6, "uJ/exec")
		})
	}
}

// BenchmarkAblationMemo quantifies the scenario-replay cache: 15
// identical executions with and without memoized replay. The memoized
// variant must charge the same energy while simulating far less.
func BenchmarkAblationMemo(b *testing.B) {
	fe, _ := preparedEnvs(b)
	scenario := func(memo bool) (energy.Joules, error) {
		server := core.NewServer(fe.Prog)
		client := core.New(core.ClientConfig{
			ID: "bench", Prog: fe.Prog, Server: server,
			Channel: radio.Fixed{Cls: radio.Class4}, Strategy: core.StrategyL2, Seed: 7,
		})
		if err := client.Register(fe.Target, fe.Prof); err != nil {
			return 0, err
		}
		if memo {
			client.Memo = core.NewMemo()
			client.MemoInputKey = 1
		}
		args, err := fe.Target.MakeArgs(client.VM, fe.App.SmallSize, rng.New(3))
		if err != nil {
			return 0, err
		}
		for run := 0; run < 15; run++ {
			client.NewExecution()
			if _, err := client.Invoke(context.Background(), fe.App.Class, fe.App.Method, args); err != nil {
				return 0, err
			}
		}
		return client.Energy(), nil
	}
	for _, memo := range []bool{true, false} {
		name := "memo"
		if !memo {
			name = "nomemo"
		}
		b.Run(name, func(b *testing.B) {
			var e energy.Joules
			for i := 0; i < b.N; i++ {
				var err error
				if e, err = scenario(memo); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(e)*1e3, "mJ/scenario")
		})
	}
}

// BenchmarkTCPRoundtrip measures one offloaded execution over the real
// loopback TCP transport (serialization + protocol + server included).
func BenchmarkTCPRoundtrip(b *testing.B) {
	fe, _ := preparedEnvs(b)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go core.Serve(l, core.NewServer(fe.Prog)) //nolint:errcheck
	remote, err := core.DialServer(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer remote.Close()
	client := core.New(core.ClientConfig{
		ID: "bench", Prog: fe.Prog, Server: remote,
		Channel: radio.Fixed{Cls: radio.Class4}, Strategy: core.StrategyR, Seed: 7,
	})
	if err := client.Register(fe.Target, fe.Prof); err != nil {
		b.Fatal(err)
	}
	args, err := fe.Target.MakeArgs(client.VM, fe.App.SmallSize, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Invoke(context.Background(), fe.App.Class, fe.App.Method, args); err != nil {
			b.Fatal(err)
		}
	}
}
