// Imagepipeline runs the paper's three image benchmarks as a pipeline
// on one PGM image — median filter (denoise), high-pass filter
// (sharpen), edge detection — deciding independently for each stage
// whether to offload, and writes the intermediate images to disk.
//
// Usage: imagepipeline [input.pgm] [output-prefix]
// Without arguments it synthesizes a test scene.
package main

import (
	"context"

	"fmt"
	"log"
	"os"

	"greenvm/internal/apps"
	"greenvm/internal/bytecode"
	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/lang"
	"greenvm/internal/pgm"
	"greenvm/internal/radio"
	"greenvm/internal/vm"
)

func main() {
	var img *pgm.Image
	prefix := "pipeline"
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		img, err = pgm.Decode(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		img = pgm.Synthetic(96, 96, 2003)
	}
	if len(os.Args) > 2 {
		prefix = os.Args[2]
	}

	// One combined program containing all three stages.
	stages := []*apps.App{apps.MF(), apps.HPF(), apps.ED()}
	prog, err := combine(stages)
	if err != nil {
		log.Fatal(err)
	}

	server := core.NewServer(prog)
	client := core.New(core.ClientConfig{
		ID: "camera-1", Prog: prog, Server: server,
		Channel: radio.Fixed{Cls: radio.Class4}, Strategy: core.StrategyAL, Seed: 5,
	})
	profiler := &core.Profiler{
		Prog:        prog,
		ClientModel: energy.MicroSPARCIIep(),
		ServerModel: energy.ServerSPARC(),
		Seed:        17,
	}
	for _, a := range stages {
		t := a.Target()
		prof, err := profiler.ProfileTarget(t)
		if err != nil {
			log.Fatal(err)
		}
		if err := client.Register(t, prof); err != nil {
			log.Fatal(err)
		}
	}
	trace := client.EnableTrace()

	// Load the image into the client VM heap.
	pixels, err := intArray(client.VM, img.Pix)
	if err != nil {
		log.Fatal(err)
	}
	w, h := int32(img.W), int32(img.H)

	run := func(class, method string, args []vm.Slot) int64 {
		res, err := client.Invoke(context.Background(), class, method, args)
		if err != nil {
			log.Fatal(err)
		}
		rec := trace.Records[len(trace.Records)-1]
		fmt.Printf("%-11s mode=%-2v energy=%10v time=%6.1f ms\n",
			class+"."+method, rec.Mode, rec.Energy, float64(rec.Time)*1e3)
		return res.I
	}

	fmt.Printf("pipeline over a %dx%d image under a Class 4 channel (AL strategy)\n\n", img.W, img.H)
	denoised := run("MF", "filter", []vm.Slot{vm.RefSlot(pixels), vm.IntSlot(w), vm.IntSlot(h), vm.IntSlot(3)})
	sharpened := run("HPF", "filter", []vm.Slot{vm.RefSlot(denoised), vm.IntSlot(w), vm.IntSlot(h), vm.IntSlot(50)})
	edges := run("ED", "detect", []vm.Slot{vm.RefSlot(sharpened), vm.IntSlot(w), vm.IntSlot(h)})

	fmt.Printf("\ntotal client energy %v, %v\n", client.Energy(), client.VM.Acct)

	for _, out := range []struct {
		handle int64
		name   string
	}{
		{denoised, prefix + "-1-median.pgm"},
		{sharpened, prefix + "-2-highpass.pgm"},
		{edges, prefix + "-3-edges.pgm"},
	} {
		im := &pgm.Image{W: img.W, H: img.H, Pix: make([]int, img.W*img.H)}
		for i := range im.Pix {
			v, err := client.VM.Heap.ElemI(out.handle, int64(i))
			if err != nil {
				log.Fatal(err)
			}
			im.Pix[i] = int(v)
		}
		f, err := os.Create(out.name)
		if err != nil {
			log.Fatal(err)
		}
		if err := pgm.Encode(f, im); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Println("wrote", out.name)
	}
}

// combine builds one program containing all three stage classes.
func combine(stages []*apps.App) (*bytecode.Program, error) {
	src := ""
	for _, a := range stages {
		src += a.Source + "\n"
	}
	return lang.Compile(src)
}

func intArray(v *vm.VM, data []int) (int64, error) {
	h, err := v.Heap.NewArray(bytecode.ElemInt, int64(len(data)))
	if err != nil {
		return 0, err
	}
	for i, x := range data {
		if err := v.Heap.SetElemI(h, int64(i), int64(x)); err != nil {
			return 0, err
		}
	}
	return h, nil
}
