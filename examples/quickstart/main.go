// Quickstart: compile an MJ program with a potential method, profile
// it, and compare all seven execution/compilation strategies of the
// paper on the same workload.
package main

import (
	"context"

	"fmt"
	"log"

	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/lang"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// The application: a naive prime counter. `potential` marks countPrimes
// as a candidate for remote execution, the paper's class-file
// annotation.
const src = `
class Primes {
  potential static int countPrimes(int n) {
    int count = 0;
    for (int x = 2; x <= n; x = x + 1) {
      if (isPrime(x)) { count = count + 1; }
    }
    return count;
  }
  static int isPrime(int x) {
    for (int d = 2; d * d <= x; d = d + 1) {
      if (x % d == 0) { return 0; }
    }
    return 1;
  }
}
`

func main() {
	prog, err := lang.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// Describe the workload: how to build inputs of a given size and
	// how the helper method reads the size parameter back.
	target := &core.Target{
		Class:  "Primes",
		Method: "countPrimes",
		MakeArgs: func(v *vm.VM, size int, r *rng.RNG) ([]vm.Slot, error) {
			return []vm.Slot{vm.IntSlot(int32(size))}, nil
		},
		SizeOf: func(v *vm.VM, args []vm.Slot) (float64, error) {
			return float64(args[0].I), nil
		},
		ProfileSizes: []int{500, 1000, 2000, 4000, 8000},
	}

	// Profile offline (the paper does this when the application is
	// deployed on the server): fits the per-mode energy estimators and
	// stores the helper-method constants in the class file.
	profiler := &core.Profiler{
		Prog:        prog,
		ClientModel: energy.MicroSPARCIIep(),
		ServerModel: energy.ServerSPARC(),
		Seed:        1,
	}
	prof, err := profiler.ProfileTarget(target)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Primes.countPrimes(6000), 10 application executions, Class 4 channel")
	fmt.Println()
	fmt.Printf("%-9s %12s %12s   %s\n", "strategy", "energy", "avg time", "modes chosen [R I L1 L2 L3]")
	for _, strategy := range core.Strategies {
		server := core.NewServer(prog)
		client := core.New(core.ClientConfig{
			ID: "pda-1", Prog: prog, Server: server,
			Channel: radio.Fixed{Cls: radio.Class4}, Strategy: strategy, Seed: 7,
		})
		if err := client.Register(target, prof); err != nil {
			log.Fatal(err)
		}
		for run := 0; run < 10; run++ {
			client.NewExecution() // classes reload per app execution
			res, err := client.Invoke(context.Background(), "Primes", "countPrimes", []vm.Slot{vm.IntSlot(6000)})
			if err != nil {
				log.Fatal(err)
			}
			if res.I != 783 {
				log.Fatalf("wrong result %d", res.I)
			}
		}
		fmt.Printf("%-9s %12v %10.1f ms   [%d %d %d %d %d]\n",
			strategy, client.Energy(), float64(client.Clock)/10*1e3,
			client.Stats.ModeCounts[core.ModeRemote], client.Stats.ModeCounts[core.ModeInterp],
			client.Stats.ModeCounts[core.ModeL1], client.Stats.ModeCounts[core.ModeL2], client.Stats.ModeCounts[core.ModeL3])
	}
	fmt.Println()
	fmt.Println("AL picks the cheapest mode per invocation; AA additionally downloads")
	fmt.Println("pre-compiled code from the server instead of running the JIT locally.")
}
