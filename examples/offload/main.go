// Offload walks through the remote-execution machinery of Fig 4 step
// by step: object serialization of the arguments, reflective
// invocation on the server, the mobile status table and client
// power-down, and the connection-loss fallback to local execution.
package main

import (
	"context"

	"fmt"
	"log"

	"greenvm/internal/apps"
	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
)

func main() {
	// Use the Path-Finder benchmark: its input is an object graph (an
	// edge-list array), so offloading exercises real serialization.
	app := apps.PF()
	prog, err := app.FreshProgram()
	if err != nil {
		log.Fatal(err)
	}

	profiler := &core.Profiler{
		Prog:        prog,
		ClientModel: energy.MicroSPARCIIep(),
		ServerModel: energy.ServerSPARC(),
		Seed:        3,
	}
	target := app.Target()
	prof, err := profiler.ProfileTarget(target)
	if err != nil {
		log.Fatal(err)
	}

	server := core.NewServer(prog)
	client := core.New(core.ClientConfig{
		ID: "pda-7", Prog: prog, Server: server,
		Channel: radio.Fixed{Cls: radio.Class3}, Strategy: core.StrategyR, Seed: 11,
	})
	if err := client.Register(target, prof); err != nil {
		log.Fatal(err)
	}
	trace := client.EnableTrace()

	const size = 200
	args, err := target.MakeArgs(client.VM, size, rng.New(5))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("1. client invokes PF.shortest — the JVM intercepts the potential method")
	res, err := client.Invoke(context.Background(), app.Class, app.Method, args)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := client.VM.Heap.ArrayLen(res.I)
	rec := trace.Records[len(trace.Records)-1]
	fmt.Printf("   mode=%v  result: shortest-path tree with %d nodes\n", rec.Mode, n)
	fmt.Printf("   bytes sent %d, received %d\n", client.Link.BytesSent, client.Link.BytesReceived)
	fmt.Printf("   invocation energy %v, time %.1f ms\n", rec.Energy, float64(rec.Time)*1e3)
	fmt.Printf("   breakdown: %v\n", client.VM.Acct)

	st := server.Status("pda-7")
	fmt.Printf("2. mobile status table row: request at t=%.3fs, estimated wake t=%.3fs, queued=%v\n",
		float64(st.RequestTime), float64(st.EstimatedEnd), st.Queued)

	fmt.Println("3. the channel drops — the client times out and falls back locally")
	client.Link.LossProb = 1.0
	res2, err := client.Invoke(context.Background(), app.Class, app.Method, args)
	if err != nil {
		log.Fatal(err)
	}
	rec = trace.Records[len(trace.Records)-1]
	fmt.Printf("   fallbacks=%d  (decision was %v; executed locally after timeout)\n",
		client.Stats.Fallbacks, rec.Mode)

	// The fallback result must match the remote one.
	a, _ := client.VM.Heap.ElemI(res.I, 0)
	b, _ := client.VM.Heap.ElemI(res2.I, 0)
	same := "match"
	if a != b {
		same = "MISMATCH"
	}
	fmt.Printf("   remote and local results %s\n", same)

	fmt.Println("4. remote compilation: download the pre-compiled body instead of running the JIT")
	client.Link.LossProb = 0
	body, bytes, err := server.CompiledBody(context.Background(), "PF.shortest", 2)
	if err != nil {
		log.Fatal(err)
	}
	chip := client.Link.Chip
	fmt.Printf("   PF.shortest at L2: %d native instructions, %d B\n", len(body.Instrs), bytes)
	fmt.Printf("   download at Class 4: %v  vs  Class 1: %v  vs  local JIT+load: %v\n",
		chip.TxEnergy(64, radio.Class4)+chip.RxEnergy(bytes, radio.Class4),
		chip.TxEnergy(64, radio.Class1)+chip.RxEnergy(bytes, radio.Class1),
		energy.Joules(prof.CompileEnergy[1]))
}
