// Adaptive traces the AL strategy's per-invocation decisions while the
// wireless channel drifts through a Markov fading process and the
// input size varies: the timeline shows the client offloading under
// good conditions, interpreting one-shot small inputs, and compiling
// when a size becomes hot — the tradeoff space of the paper's §3.2.
package main

import (
	"context"

	"fmt"
	"log"
	"strings"

	"greenvm/internal/apps"
	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
)

func main() {
	app := apps.FE()
	prog, err := app.FreshProgram()
	if err != nil {
		log.Fatal(err)
	}
	profiler := &core.Profiler{
		Prog:        prog,
		ClientModel: energy.MicroSPARCIIep(),
		ServerModel: energy.ServerSPARC(),
		Seed:        9,
	}
	target := app.Target()
	prof, err := profiler.ProfileTarget(target)
	if err != nil {
		log.Fatal(err)
	}

	chRand := rng.New(77)
	channel := radio.NewMarkov(radio.Class3, 0.55, chRand)
	server := core.NewServer(prog)
	client := core.New(core.ClientConfig{
		ID: "pda-2", Prog: prog, Server: server,
		Channel: channel, Strategy: core.StrategyAL, Seed: 13,
	})
	if err := client.Register(target, prof); err != nil {
		log.Fatal(err)
	}
	trace := client.EnableTrace()

	sizes := app.ScenarioSizes
	sizeRand := rng.New(99)

	fmt.Println("AL over a Markov-fading channel, FE.integrate, 40 invocations")
	fmt.Println()
	fmt.Println(" #  channel      size     mode      energy      note")
	for i := 0; i < 40; i++ {
		size := sizes[sizeRand.Intn(len(sizes))]
		args, err := target.MakeArgs(client.VM, size, rng.New(uint64(size)))
		if err != nil {
			log.Fatal(err)
		}
		client.NewExecution()
		if _, err := client.Invoke(context.Background(), app.Class, app.Method, args); err != nil {
			log.Fatal(err)
		}
		rec := trace.Records[len(trace.Records)-1]
		note := ""
		switch {
		case rec.Mode == core.ModeRemote && channel.Current() >= radio.Class3:
			note = "good channel: offload"
		case rec.Mode == core.ModeInterp:
			note = "one-shot: interpret, skip compilation"
		case rec.Mode.IsCompiled():
			note = "hot enough to pay the JIT"
		}
		bar := strings.Repeat("#", int(channel.Current()))
		fmt.Printf("%2d  %-4s %s %8d  %-6v %10v   %s\n",
			i+1, bar, strings.Repeat(".", 4-int(channel.Current())), size, rec.Mode, rec.Energy, note)
		client.StepChannel()
	}

	fmt.Println()
	fmt.Printf("total energy %v over %.2f s virtual time\n", client.Energy(), float64(client.Clock))
	fmt.Printf("mode counts [I L1 L2 L3 R] = %v, fallbacks = %d\n", client.Stats.ModeCounts, client.Stats.Fallbacks)

	// Compare with the static strategies on the identical sequence.
	fmt.Println()
	for _, strat := range []core.Strategy{core.StrategyR, core.StrategyI, core.StrategyL2} {
		ch := radio.NewMarkov(radio.Class3, 0.55, rng.New(77))
		srv := core.NewServer(prog)
		cl := core.New(core.ClientConfig{
			ID: "pda-2", Prog: prog, Server: srv,
			Channel: ch, Strategy: strat, Seed: 13,
		})
		if err := cl.Register(target, prof); err != nil {
			log.Fatal(err)
		}
		sr := rng.New(99)
		for i := 0; i < 40; i++ {
			size := sizes[sr.Intn(len(sizes))]
			args, _ := target.MakeArgs(cl.VM, size, rng.New(uint64(size)))
			cl.NewExecution()
			if _, err := cl.Invoke(context.Background(), app.Class, app.Method, args); err != nil {
				log.Fatal(err)
			}
			cl.StepChannel()
		}
		fmt.Printf("static %-3v on the same sequence: %v\n", strat, cl.Energy())
	}
}
