// Command figures regenerates every table and figure of the paper's
// evaluation section on the simulated platform.
//
// Usage:
//
//	figures [-fig N] [-claims] [-runs N] [-detail] [-seed N] [-workers N]
//
// Without flags it regenerates everything (Figs 1, 2, 3, 5, 6, 7, 8
// and the §3 claims). -runs scales the per-scenario execution count
// (the paper uses 300). -workers shards the experiment grid across
// that many goroutines (0 = GOMAXPROCS); the output is identical to a
// serial run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"greenvm/internal/apps"
	"greenvm/internal/core"
	"greenvm/internal/experiments"
)

// obsFlags bundles the observability outputs: run the AL/AA grid over
// all apps with the internal/obs sinks attached and render the
// requested artifacts.
type obsFlags struct {
	Audit      bool
	MetricsOut string
	TraceOut   string
}

func (o obsFlags) active() bool { return o.Audit || o.MetricsOut != "" || o.TraceOut != "" }

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (1, 2, 3, 5, 6, 7, 8); 0 = all")
	claims := flag.Bool("claims", false, "regenerate only the §3 claims")
	ext := flag.Bool("ext", false, "run the extension experiments (Markov channel, tracker error, breakdown, burst-outage resilience)")
	runs := flag.Int("runs", 300, "application executions per Fig 7 scenario")
	detail := flag.Bool("detail", false, "print per-app Fig 7 tables")
	seed := flag.Uint64("seed", 2003, "experiment seed")
	workers := flag.Int("workers", 0, "parallel experiment workers (0 = GOMAXPROCS)")
	appsFlag := flag.String("apps", "", "comma-separated app names to run (default: all)")
	var obs obsFlags
	flag.BoolVar(&obs.Audit, "audit", false, "print per-method estimator prediction error and regret for AL and AA")
	flag.StringVar(&obs.MetricsOut, "metrics", "", "write per-cell Prometheus metrics of the observed AL/AA grid to FILE (\"-\" = stdout)")
	flag.StringVar(&obs.TraceOut, "trace-out", "", "write the observed AL/AA grid's Chrome trace-event JSON to FILE")
	flag.Parse()

	if err := run(os.Stdout, *fig, *claims, *ext, *runs, *detail, *seed, *workers, *appsFlag, obs); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// selectApps filters the app set by the -apps flag value.
func selectApps(names string) ([]*apps.App, error) {
	all := apps.All()
	if names == "" {
		return all, nil
	}
	byName := map[string]*apps.App{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*apps.App
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a := byName[n]
		if a == nil {
			return nil, fmt.Errorf("unknown app %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

func run(w io.Writer, fig int, claimsOnly, ext bool, runs int, detail bool, seed uint64, workers int, appNames string, obs obsFlags) error {
	switch fig {
	case 0, 1, 2, 3, 5, 6, 7, 8:
	default:
		return fmt.Errorf("no figure %d (valid: 1, 2, 3, 5, 6, 7, 8)", fig)
	}
	all := fig == 0 && !claimsOnly && !ext && !obs.active()
	runner := experiments.NewRunner(workers)

	if all || fig == 1 {
		experiments.RenderFig1(w)
		fmt.Fprintln(w)
	}
	if all || fig == 2 {
		experiments.RenderFig2(w)
		fmt.Fprintln(w)
	}
	if all || fig == 3 {
		experiments.RenderFig3(w)
		fmt.Fprintln(w)
	}
	if all || fig == 5 {
		experiments.RenderFig5(w)
		fmt.Fprintln(w)
	}

	needEnvs := all || claimsOnly || ext || obs.active() || fig == 6 || fig == 7 || fig == 8
	if !needEnvs {
		return nil
	}
	list, err := selectApps(appNames)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "preparing applications (compile + profile)...")
	envs, err := experiments.PrepareAllOn(runner, list, seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)

	if all || fig == 6 {
		// The paper shows three benchmarks in Fig 6.
		var three []*experiments.Env
		for _, e := range envs {
			switch e.App.Name {
			case "mf", "hpf", "fe":
				three = append(three, e)
			}
		}
		bars, err := experiments.RunFig6On(runner, three, seed)
		if err != nil {
			return err
		}
		experiments.RenderFig6(w, bars)
		fmt.Fprintln(w)
	}

	var fig7 *experiments.Fig7Result
	if all || claimsOnly || fig == 7 {
		fig7, err = experiments.RunFig7On(runner, envs, runs, seed)
		if err != nil {
			return err
		}
	}
	if all || fig == 7 {
		experiments.RenderFig7(w, fig7)
		fmt.Fprintln(w)
		if detail {
			for sit := experiments.Situation(0); sit < experiments.NumSituations; sit++ {
				experiments.RenderFig7PerApp(w, fig7, sit)
				fmt.Fprintln(w)
			}
		}
	}

	if all || fig == 8 {
		rows, err := experiments.RunFig8On(runner, envs)
		if err != nil {
			return err
		}
		experiments.RenderFig8(w, rows)
		fmt.Fprintln(w)
	}

	if all || claimsOnly {
		c, err := experiments.MeasureClaimsOn(runner, envs, fig7, seed+7)
		if err != nil {
			return err
		}
		experiments.RenderClaims(w, c)
	}

	if ext {
		// Extension experiments run on one compute-heavy app (fe) and
		// one data-heavy app (mf).
		for _, name := range []string{"fe", "mf"} {
			var env *experiments.Env
			for _, e := range envs {
				if e.App.Name == name {
					env = e
				}
			}
			if env == nil {
				continue
			}
			pts, err := experiments.RunMarkovSweepOn(runner, env, runs, seed)
			if err != nil {
				return err
			}
			experiments.RenderMarkovSweep(w, name, pts)
			fmt.Fprintln(w)
			tps, err := experiments.RunTrackerErrorSweepOn(runner, env, runs, seed)
			if err != nil {
				return err
			}
			experiments.RenderTrackerErrorSweep(w, name, tps)
			fmt.Fprintln(w)
			rows, err := experiments.RunBreakdownOn(runner, env, runs, seed)
			if err != nil {
				return err
			}
			experiments.RenderBreakdown(w, name, rows)
			fmt.Fprintln(w)
			cps, err := experiments.RunCodeCacheSweepOn(runner, env, runs, seed)
			if err != nil {
				return err
			}
			experiments.RenderCodeCacheSweep(w, name, cps)
			fmt.Fprintln(w)
			rps, err := experiments.RunResilienceSweepOn(runner, env, runs, seed)
			if err != nil {
				return err
			}
			experiments.RenderResilienceSweep(w, name, rps)
			fmt.Fprintln(w)
		}
	}

	if obs.active() {
		cells, err := experiments.RunObservedOn(runner, envs,
			[]core.Strategy{core.StrategyAL, core.StrategyAA},
			experiments.SitUniform, runs, seed)
		if err != nil {
			return err
		}
		if obs.Audit {
			fmt.Fprintf(w, "estimator audit: AL and AA, situation %v, %d executions per cell\n\n",
				experiments.SitUniform, runs)
			experiments.RenderAudits(w, cells)
		}
		if obs.MetricsOut != "" {
			if err := writeArtifact(obs.MetricsOut, func(out io.Writer) error {
				return experiments.WriteMetricsDump(out, cells)
			}); err != nil {
				return err
			}
		}
		if obs.TraceOut != "" {
			if err := writeArtifact(obs.TraceOut, func(out io.Writer) error {
				return experiments.WriteTrace(out, cells)
			}); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote trace for %d cells to %s\n", len(cells), obs.TraceOut)
		}
	}
	return nil
}

// writeArtifact writes through fn to the named file, or to stdout for
// "-".
func writeArtifact(name string, fn func(io.Writer) error) error {
	if name == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
