package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden figure output")

// The parameter tables render without preparing applications; the
// heavier figures are covered by internal/experiments tests.
func TestStaticTables(t *testing.T) {
	for _, fig := range []int{1, 2, 3, 5} {
		var buf bytes.Buffer
		if err := run(&buf, fig, false, false, 10, false, 1, 1, "", obsFlags{}); err != nil {
			t.Errorf("fig %d: %v", fig, err)
		}
	}
}

func TestSelectApps(t *testing.T) {
	all, err := selectApps("")
	if err != nil || len(all) == 0 {
		t.Fatalf("selectApps(\"\") = %v, %v", all, err)
	}
	two, err := selectApps("fe, mf")
	if err != nil || len(two) != 2 || two[0].Name != "fe" || two[1].Name != "mf" {
		t.Fatalf("selectApps(\"fe, mf\") = %v, %v", two, err)
	}
	if _, err := selectApps("nosuch"); err == nil {
		t.Fatal("selectApps(\"nosuch\") should fail")
	}
}

// TestGoldenFigures locks the complete figure/claims output of a
// scaled-down configuration (2 apps, 10 executions per scenario).
// Performance work on the simulation hot path — interpreter dispatch,
// batched energy accounting, compile memoization — must leave this
// output byte-identical. Regenerate deliberately with:
//
//	go test ./cmd/figures -run TestGoldenFigures -update-golden
func TestGoldenFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("golden figure grid is slow; skipped in -short mode")
	}
	var buf bytes.Buffer
	// Fixed workers: the output is identical for any worker count (the
	// determinism tests assert that); 4 keeps the test fast.
	if err := run(&buf, 0, false, false, 10, false, 2003, 4, "fe,mf", obsFlags{}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "figures_fe_mf_r10.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("figure output diverged from golden file %s.\ngot %d bytes, want %d bytes.\nIf the change is intentional, regenerate with -update-golden.\n--- got ---\n%s",
			golden, buf.Len(), len(want), diffHint(buf.Bytes(), want))
	}
}

// diffHint returns the first diverging region of got vs want.
func diffHint(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	i := 0
	for i < n && got[i] == want[i] {
		i++
	}
	start := i - 200
	if start < 0 {
		start = 0
	}
	end := i + 200
	if end > len(got) {
		end = len(got)
	}
	return string(got[start:end])
}
