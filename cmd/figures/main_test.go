package main

import "testing"

// The parameter tables render without preparing applications; the
// heavier figures are covered by internal/experiments tests.
func TestStaticTables(t *testing.T) {
	for _, fig := range []int{1, 2, 3, 5} {
		if err := run(fig, false, false, 10, false, 1, 1, obsFlags{}); err != nil {
			t.Errorf("fig %d: %v", fig, err)
		}
	}
}
