// Command benchreport runs the repo's headline benchmarks in-process
// and writes a machine-readable JSON report — the diffable perf
// trajectory artifact (BENCH_<n>.json) CI records per PR.
//
// The report carries the FigureGrid and Fleet timings (ns/op plus
// their reported metrics), the fleet placement sweep — shed rate,
// total energy and queue high-water mark per (fleet size, server
// count, placement) at equal aggregate server capacity — and the
// chaos sweep: fallbacks, served work and failovers per (fault shape,
// placement, breaker scope) with the fault injected on backend s0.
// The sweep numbers are deterministic — only the timings vary run to
// run.
//
// Usage:
//
//	benchreport -out BENCH_7.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"greenvm/internal/apps"
	"greenvm/internal/core"
	"greenvm/internal/experiments"
	"greenvm/internal/fleet"
)

type benchEntry struct {
	Name    string             `json:"name"`
	N       int                `json:"n"`
	NsPerOp int64              `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type sweepRow struct {
	Clients   int     `json:"clients"`
	Servers   int     `json:"servers"`
	Placement string  `json:"placement"`
	Served    int     `json:"served"`
	Shed      int     `json:"shed"`
	ShedPct   float64 `json:"shed_pct"`
	EnergyJ   float64 `json:"total_energy_j"`
	MaxDepth  int     `json:"max_queue_depth"`
}

type chaosRow struct {
	Fault     string  `json:"fault"`
	Placement string  `json:"placement"`
	Breakers  string  `json:"breakers"`
	Served    int     `json:"served"`
	Shed      int     `json:"shed"`
	Fallbacks int     `json:"fallbacks"`
	Failovers int     `json:"failovers"`
	Warmups   int     `json:"warmups"`
	EnergyJ   float64 `json:"total_energy_j"`
}

type report struct {
	Schema         int          `json:"schema"`
	GoVersion      string       `json:"go_version"`
	GOMAXPROCS     int          `json:"gomaxprocs"`
	Benches        []benchEntry `json:"benches"`
	PlacementSweep []sweepRow   `json:"placement_sweep"`
	ChaosSweep     []chaosRow   `json:"chaos_sweep"`
}

func main() {
	out := flag.String("out", "BENCH_7.json", "report file; '-' for stdout")
	execs := flag.Int("execs", 4, "executions per client in the placement sweep")
	flag.Parse()
	if err := run(*out, *execs); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run(out string, execs int) error {
	fmt.Fprintln(os.Stderr, "profiling workloads...")
	feEnv, err := experiments.Prepare(apps.FE(), 42)
	if err != nil {
		return err
	}
	sortEnv, err := experiments.Prepare(apps.Sort(), 42)
	if err != nil {
		return err
	}
	envs := []*experiments.Env{feEnv, sortEnv}
	w := fleet.WorkloadOf(feEnv)

	rep := &report{Schema: 7, GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// FigureGrid: the Fig 7 scenario grid, serial and parallel — the
	// same shape as BenchmarkFigureGrid.
	for _, workers := range []int{1, 4} {
		workers := workers
		var norm float64
		r := testing.Benchmark(func(b *testing.B) {
			runner := experiments.NewRunner(workers)
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFig7On(runner, envs, 20, 42)
				if err != nil {
					b.Fatal(err)
				}
				norm = res.Strategy(experiments.SitUniform, core.StrategyAL)
			}
		})
		rep.Benches = append(rep.Benches, benchEntry{
			Name: fmt.Sprintf("FigureGrid/workers=%d", workers),
			N:    r.N, NsPerOp: r.NsPerOp(),
			Metrics: map[string]float64{"AL_over_L1": norm},
		})
		fmt.Fprintf(os.Stderr, "FigureGrid/workers=%d: %d ns/op\n", workers, r.NsPerOp())
	}

	// Fleet: the 16-client mixed fleet, one and four simulation slots —
	// the same shape as BenchmarkFleet.
	for _, conc := range []int{1, 4} {
		conc := conc
		var rate float64
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := fleet.MixedFleet(w, 16,
					[]core.Strategy{core.StrategyR, core.StrategyAL, core.StrategyAA},
					3, core.SessionConfig{Workers: 2, QueueCap: 4}, 42)
				spec.Concurrency = conc
				res, err := fleet.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				for _, c := range res.Clients {
					if c.Err != "" {
						b.Fatalf("client %s: %s", c.ID, c.Err)
					}
				}
				rate = res.ShedRate()
			}
		})
		rep.Benches = append(rep.Benches, benchEntry{
			Name: fmt.Sprintf("Fleet/slots=%d", conc),
			N:    r.N, NsPerOp: r.NsPerOp(),
			Metrics: map[string]float64{"shed_pct": 100 * rate},
		})
		fmt.Fprintf(os.Stderr, "Fleet/slots=%d: %d ns/op\n", conc, r.NsPerOp())
	}

	// Placement sweep at equal aggregate capacity: 4 workers total,
	// split across the pool; queue capacity 4 per backend.
	const aggregateWorkers, queuePerBackend = 4, 4
	for _, n := range []int{16, 32} {
		for _, servers := range []int{1, 2, 4} {
			placements := fleet.Placements
			if servers == 1 {
				placements = []fleet.Placement{fleet.PlaceCheapest}
			}
			for _, pl := range placements {
				spec := fleet.MixedFleet(w, n,
					[]core.Strategy{core.StrategyR, core.StrategyAL, core.StrategyAA},
					execs, core.SessionConfig{Workers: aggregateWorkers / servers, QueueCap: queuePerBackend}, 42)
				spec.Servers = servers
				spec.Placement = pl
				res, err := fleet.Run(spec)
				if err != nil {
					return err
				}
				for _, c := range res.Clients {
					if c.Err != "" {
						return fmt.Errorf("sweep client %s: %s", c.ID, c.Err)
					}
				}
				rep.PlacementSweep = append(rep.PlacementSweep, sweepRow{
					Clients: n, Servers: servers, Placement: pl.String(),
					Served: res.Server.Served, Shed: res.Server.Shed,
					ShedPct:  100 * res.ShedRate(),
					EnergyJ:  float64(res.TotalEnergy()),
					MaxDepth: res.Server.MaxQueueDepth,
				})
			}
		}
	}

	// Chaos sweep: every canonical fault shape on backend s0 of a
	// two-backend pool, crossed with placement and breaker scope. 12
	// executions per client give an opened breaker invocations left to
	// shape; the breaker prototype's cooldown outlives the
	// inter-invocation gap for the same reason.
	for _, shape := range fleet.SweepChaosShapes() {
		for _, pl := range fleet.Placements {
			for _, mode := range fleet.BreakerModes {
				chaos := make([]fleet.BackendChaos, 2)
				chaos[0] = shape.Chaos
				spec := fleet.MixedFleet(w, 16,
					[]core.Strategy{core.StrategyR, core.StrategyAL, core.StrategyAA},
					12, core.SessionConfig{Workers: 2, QueueCap: 16}, 42)
				spec.Servers = 2
				spec.Placement = pl
				spec.Chaos = chaos
				spec.Breakers = mode
				spec.Breaker = &core.Breaker{Threshold: 2, Cooldown: 0.05, MaxCooldown: 0.4, ProbeBytes: 16}
				res, err := fleet.Run(spec)
				if err != nil {
					return err
				}
				fallbacks := 0
				for _, c := range res.Clients {
					if c.Err != "" {
						return fmt.Errorf("chaos client %s: %s", c.ID, c.Err)
					}
					fallbacks += c.Stats.Fallbacks
				}
				rep.ChaosSweep = append(rep.ChaosSweep, chaosRow{
					Fault: shape.Name, Placement: pl.String(), Breakers: mode.String(),
					Served: res.Server.Served, Shed: res.Server.Shed,
					Fallbacks: fallbacks, Failovers: res.TotalFailovers(),
					Warmups: res.TotalWarmups(), EnergyJ: float64(res.TotalEnergy()),
				})
			}
		}
	}

	f := os.Stdout
	if out != "-" {
		f, err = os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
