// Command benchreport runs the repo's headline benchmarks in-process
// and writes a machine-readable JSON report — the diffable perf
// trajectory artifact (BENCH_<n>.json) CI records per PR.
//
// The report carries the FigureGrid and Fleet timings (ns/op plus
// their reported metrics), the FleetScale streamed-population run
// (ns/op plus bytes_per_client — the mid-run live heap per handset,
// gating the streaming-results memory claim), the observability
// micro-benchmarks (P² sketch observation, cached registry child
// handles, windowed time-series writes — the telemetry hot path), the
// fleet placement sweep — shed rate, total energy and queue
// high-water mark per (fleet size, server count, placement) at equal
// aggregate server capacity — and the chaos sweep: fallbacks, served
// work and failovers per (fault shape, placement, breaker scope) with
// the fault injected on backend s0. The sweep numbers are
// deterministic — only the timings vary run to run.
//
// benchreport is also the trajectory's regression gate: -compare
// diffs ns_per_op against a previous report and exits non-zero when
// any benchmark regressed past -threshold (default 15%), unless the
// benchmark is named in -allow.
//
// Finally it is the schema checker for the telemetry artifacts:
// -validate-ts checks a fleetsim -timeseries JSONL file (header
// schema/tick, contiguous tick-aligned windows, finite non-negative
// counters), and -validate-prom checks a Prometheus text exposition
// (parseable samples; every family declared `# TYPE ... summary`
// carries quantile samples plus _sum and _count).
//
// Usage:
//
//	benchreport -out BENCH_10.json
//	benchreport -out /tmp/bench.json -compare BENCH_10.json
//	benchreport -compare BENCH_10.json -against /tmp/bench.json
//	benchreport -validate-ts ts.jsonl
//	benchreport -validate-prom metrics.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"

	"greenvm/internal/apps"
	"greenvm/internal/core"
	"greenvm/internal/experiments"
	"greenvm/internal/fleet"
	"greenvm/internal/obs"
	"greenvm/internal/rng"
)

type benchEntry struct {
	Name    string             `json:"name"`
	N       int                `json:"n"`
	NsPerOp int64              `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type sweepRow struct {
	Clients   int     `json:"clients"`
	Servers   int     `json:"servers"`
	Placement string  `json:"placement"`
	Served    int     `json:"served"`
	Shed      int     `json:"shed"`
	ShedPct   float64 `json:"shed_pct"`
	EnergyJ   float64 `json:"total_energy_j"`
	MaxDepth  int     `json:"max_queue_depth"`
}

type chaosRow struct {
	Fault     string  `json:"fault"`
	Placement string  `json:"placement"`
	Breakers  string  `json:"breakers"`
	Served    int     `json:"served"`
	Shed      int     `json:"shed"`
	Fallbacks int     `json:"fallbacks"`
	Failovers int     `json:"failovers"`
	Warmups   int     `json:"warmups"`
	EnergyJ   float64 `json:"total_energy_j"`
}

type report struct {
	Schema         int          `json:"schema"`
	GoVersion      string       `json:"go_version"`
	GOMAXPROCS     int          `json:"gomaxprocs"`
	Benches        []benchEntry `json:"benches"`
	PlacementSweep []sweepRow   `json:"placement_sweep"`
	ChaosSweep     []chaosRow   `json:"chaos_sweep"`
}

func main() {
	out := flag.String("out", "BENCH_10.json", "report file; '-' for stdout")
	execs := flag.Int("execs", 4, "executions per client in the placement sweep")
	compare := flag.String("compare", "", "baseline report to diff ns_per_op against; non-zero exit on regression")
	against := flag.String("against", "", "with -compare: diff this report file instead of running the benchmarks")
	threshold := flag.Float64("threshold", 0.15, "with -compare: fractional ns_per_op growth that counts as a regression")
	allow := flag.String("allow", "", "with -compare: comma-separated benchmark names exempt from the gate")
	validateTS := flag.String("validate-ts", "", "validate a timeseries JSONL file ('-' for stdin) and exit; no benchmarks run")
	validateProm := flag.String("validate-prom", "", "validate a Prometheus text exposition file ('-' for stdin) and exit; no benchmarks run")
	flag.Parse()
	if *validateTS != "" || *validateProm != "" {
		if err := runValidate(os.Stdout, *validateTS, *validateProm); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*out, *execs, *compare, *against, *threshold, allowSet(*allow)); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func allowSet(s string) map[string]bool {
	set := map[string]bool{}
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			set[name] = true
		}
	}
	return set
}

func run(out string, execs int, compare, against string, threshold float64, allow map[string]bool) error {
	if compare != "" && against != "" {
		// Pure file-vs-file mode: gate a previously produced report
		// without re-running the benchmarks.
		cur, err := loadReport(against)
		if err != nil {
			return err
		}
		return gate(os.Stderr, compare, cur, threshold, allow)
	}
	rep, err := produce(out, execs)
	if err != nil {
		return err
	}
	if compare != "" {
		return gate(os.Stderr, compare, rep, threshold, allow)
	}
	return nil
}

func loadReport(path string) (*report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// gate diffs cur against the baseline report at basePath and returns
// an error when any non-allowlisted benchmark regressed past the
// threshold.
func gate(w io.Writer, basePath string, cur *report, threshold float64, allow map[string]bool) error {
	base, err := loadReport(basePath)
	if err != nil {
		return err
	}
	diffs, failed := compareReports(base, cur, threshold, allow)
	fmt.Fprintf(w, "bench comparison vs %s (threshold %+.0f%%):\n", basePath, 100*threshold)
	for _, d := range diffs {
		fmt.Fprintln(w, d)
	}
	if failed {
		return fmt.Errorf("benchmark regression past %.0f%% threshold", 100*threshold)
	}
	return nil
}

// compareReports diffs ns_per_op per benchmark name. A benchmark
// regresses when its time grew by more than threshold; allowlisted
// names are reported but never fail the gate. Benchmarks present in
// only one report are informational.
func compareReports(base, cur *report, threshold float64, allow map[string]bool) (lines []string, failed bool) {
	old := map[string]benchEntry{}
	for _, b := range base.Benches {
		old[b.Name] = b
	}
	seen := map[string]bool{}
	for _, b := range cur.Benches {
		seen[b.Name] = true
		o, ok := old[b.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("  %-24s %12d ns/op  (new benchmark)", b.Name, b.NsPerOp))
			continue
		}
		delta := float64(b.NsPerOp-o.NsPerOp) / float64(o.NsPerOp)
		tag := ""
		switch {
		case delta > threshold && allow[b.Name]:
			tag = "  REGRESSION (allowed)"
		case delta > threshold:
			tag = "  REGRESSION"
			failed = true
		}
		lines = append(lines, fmt.Sprintf("  %-24s %12d -> %12d ns/op  %+6.1f%%%s",
			b.Name, o.NsPerOp, b.NsPerOp, 100*delta, tag))
	}
	for _, b := range base.Benches {
		if !seen[b.Name] {
			lines = append(lines, fmt.Sprintf("  %-24s missing from current report", b.Name))
		}
	}
	return lines, failed
}

func produce(out string, execs int) (*report, error) {
	fmt.Fprintln(os.Stderr, "profiling workloads...")
	feEnv, err := experiments.Prepare(apps.FE(), 42)
	if err != nil {
		return nil, err
	}
	sortEnv, err := experiments.Prepare(apps.Sort(), 42)
	if err != nil {
		return nil, err
	}
	envs := []*experiments.Env{feEnv, sortEnv}
	w := fleet.WorkloadOf(feEnv)

	rep := &report{Schema: 10, GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// FigureGrid: the Fig 7 scenario grid, serial and parallel — the
	// same shape as BenchmarkFigureGrid.
	for _, workers := range []int{1, 4} {
		workers := workers
		var norm float64
		r := testing.Benchmark(func(b *testing.B) {
			runner := experiments.NewRunner(workers)
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFig7On(runner, envs, 20, 42)
				if err != nil {
					b.Fatal(err)
				}
				norm = res.Strategy(experiments.SitUniform, core.StrategyAL)
			}
		})
		rep.Benches = append(rep.Benches, benchEntry{
			Name: fmt.Sprintf("FigureGrid/workers=%d", workers),
			N:    r.N, NsPerOp: r.NsPerOp(),
			Metrics: map[string]float64{"AL_over_L1": norm},
		})
		fmt.Fprintf(os.Stderr, "FigureGrid/workers=%d: %d ns/op\n", workers, r.NsPerOp())
	}

	// Fleet: the 16-client mixed fleet, one and four simulation slots —
	// the same shape as BenchmarkFleet.
	for _, conc := range []int{1, 4} {
		conc := conc
		var rate float64
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := fleet.MixedFleet(w, 16,
					[]core.Strategy{core.StrategyR, core.StrategyAL, core.StrategyAA},
					3, core.SessionConfig{Workers: 2, QueueCap: 4}, 42)
				spec.Concurrency = conc
				res, err := fleet.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				for _, c := range res.Clients {
					if c.Err != "" {
						b.Fatalf("client %s: %s", c.ID, c.Err)
					}
				}
				rate = res.ShedRate()
			}
		})
		rep.Benches = append(rep.Benches, benchEntry{
			Name: fmt.Sprintf("Fleet/slots=%d", conc),
			N:    r.N, NsPerOp: r.NsPerOp(),
			Metrics: map[string]float64{"shed_pct": 100 * rate},
		})
		fmt.Fprintf(os.Stderr, "Fleet/slots=%d: %d ns/op\n", conc, r.NsPerOp())
	}

	// FleetScale: the city-scale shape at bench size — a 2k-client
	// streamed population with diurnal arrivals and drifting channels,
	// records retired through a sink. bytes_per_client samples live
	// heap (after GC) at the cohort midpoint: it tracks the
	// launch-ahead window, not the fleet, and gates the streaming
	// memory claim alongside the wall-clock gate on ns_per_op.
	{
		const scaleN = 2000
		var bytesPerClient float64
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				arrival, err := fleet.ParseArrival("diurnal:0.5")
				if err != nil {
					b.Fatal(err)
				}
				drift, err := fleet.ParseDrift("overnight")
				if err != nil {
					b.Fatal(err)
				}
				spec := fleet.Spec{
					Workload: w,
					Population: fleet.NewPopulation(scaleN,
						fleet.WithSeed(42),
						fleet.WithStrategyMix(core.StrategyR, core.StrategyAL, core.StrategyAA),
						fleet.WithExecutions(1),
						fleet.WithSizes(16),
						fleet.WithArrivalCurve(arrival),
						fleet.WithChannelMix(fleet.ChannelDrifting),
						fleet.WithChannelDrift(drift),
					),
					Server: core.SessionConfig{Workers: 4, QueueCap: 16},
				}
				runtime.GC()
				var before runtime.MemStats
				runtime.ReadMemStats(&before)
				seen := 0
				spec.ResultSink = func(fleet.ClientResult) {
					if seen++; seen == scaleN/2 {
						runtime.GC()
						var m runtime.MemStats
						runtime.ReadMemStats(&m)
						bytesPerClient = (float64(m.HeapAlloc) - float64(before.HeapAlloc)) / scaleN
					}
				}
				res, err := fleet.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				if res.Totals.Errors > 0 {
					b.Fatalf("%d clients failed", res.Totals.Errors)
				}
			}
		})
		rep.Benches = append(rep.Benches, benchEntry{
			Name: "FleetScale/clients=2000",
			N:    r.N, NsPerOp: r.NsPerOp(),
			Metrics: map[string]float64{"bytes_per_client": bytesPerClient},
		})
		fmt.Fprintf(os.Stderr, "FleetScale/clients=2000: %d ns/op, %.0f bytes/client\n", r.NsPerOp(), bytesPerClient)
	}

	// Observability micro-benchmarks: the per-event costs of the
	// telemetry hot path. P2Observe is one streaming-quantile update,
	// the child benchmarks are one counter/summary write through a
	// cached registry handle (label set resolved once, so the cost is a
	// mutex acquisition), and TimeSeriesAdd is one windowed counter
	// accumulation including amortized window materialization.
	for _, ob := range []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"P2Observe", func(b *testing.B) {
			p := obs.NewP2(0.95)
			r := rng.New(7)
			for i := 0; i < b.N; i++ {
				p.Observe(r.Float64())
			}
		}},
		{"CounterChildAdd", func(b *testing.B) {
			c := obs.NewRegistry().Counter("bench_events_total", "bench").WithLabels("backend", "s0")
			for i := 0; i < b.N; i++ {
				c.Add(1)
			}
		}},
		{"SummaryChildObserve", func(b *testing.B) {
			s := obs.NewRegistry().Summary("bench_wait_seconds", "bench").WithLabels("backend", "s0")
			r := rng.New(7)
			for i := 0; i < b.N; i++ {
				s.Observe(r.Float64())
			}
		}},
		{"TimeSeriesAdd", func(b *testing.B) {
			ts := obs.NewTimeSeries(0.0005, 512)
			name := obs.SeriesName("served", "backend", "s0")
			for i := 0; i < b.N; i++ {
				ts.AddIdx(int64(i>>4), name, 1)
			}
		}},
	} {
		r := testing.Benchmark(ob.fn)
		rep.Benches = append(rep.Benches, benchEntry{Name: ob.name, N: r.N, NsPerOp: r.NsPerOp()})
		fmt.Fprintf(os.Stderr, "%s: %d ns/op\n", ob.name, r.NsPerOp())
	}

	// Placement sweep at equal aggregate capacity: 4 workers total,
	// split across the pool; queue capacity 4 per backend.
	const aggregateWorkers, queuePerBackend = 4, 4
	for _, n := range []int{16, 32} {
		for _, servers := range []int{1, 2, 4} {
			placements := fleet.Placements
			if servers == 1 {
				placements = []fleet.Placement{fleet.PlaceCheapest}
			}
			for _, pl := range placements {
				spec := fleet.MixedFleet(w, n,
					[]core.Strategy{core.StrategyR, core.StrategyAL, core.StrategyAA},
					execs, core.SessionConfig{Workers: aggregateWorkers / servers, QueueCap: queuePerBackend}, 42)
				spec.Servers = servers
				spec.Placement = pl
				res, err := fleet.Run(spec)
				if err != nil {
					return nil, err
				}
				for _, c := range res.Clients {
					if c.Err != "" {
						return nil, fmt.Errorf("sweep client %s: %s", c.ID, c.Err)
					}
				}
				rep.PlacementSweep = append(rep.PlacementSweep, sweepRow{
					Clients: n, Servers: servers, Placement: pl.String(),
					Served: res.Server.Served, Shed: res.Server.Shed,
					ShedPct:  100 * res.ShedRate(),
					EnergyJ:  float64(res.TotalEnergy()),
					MaxDepth: res.Server.MaxQueueDepth,
				})
			}
		}
	}

	// Chaos sweep: every canonical fault shape on backend s0 of a
	// two-backend pool, crossed with placement and breaker scope. 12
	// executions per client give an opened breaker invocations left to
	// shape; the breaker prototype's cooldown outlives the
	// inter-invocation gap for the same reason.
	for _, shape := range fleet.SweepChaosShapes() {
		for _, pl := range fleet.Placements {
			for _, mode := range fleet.BreakerModes {
				chaos := make([]fleet.BackendChaos, 2)
				chaos[0] = shape.Chaos
				spec := fleet.MixedFleet(w, 16,
					[]core.Strategy{core.StrategyR, core.StrategyAL, core.StrategyAA},
					12, core.SessionConfig{Workers: 2, QueueCap: 16}, 42)
				spec.Servers = 2
				spec.Placement = pl
				spec.Chaos = chaos
				spec.Breakers = mode
				spec.Breaker = &core.Breaker{Threshold: 2, Cooldown: 0.05, MaxCooldown: 0.4, ProbeBytes: 16}
				res, err := fleet.Run(spec)
				if err != nil {
					return nil, err
				}
				fallbacks := 0
				for _, c := range res.Clients {
					if c.Err != "" {
						return nil, fmt.Errorf("chaos client %s: %s", c.ID, c.Err)
					}
					fallbacks += c.Stats.Fallbacks
				}
				rep.ChaosSweep = append(rep.ChaosSweep, chaosRow{
					Fault: shape.Name, Placement: pl.String(), Breakers: mode.String(),
					Served: res.Server.Served, Shed: res.Server.Shed,
					Fallbacks: fallbacks, Failovers: res.TotalFailovers(),
					Warmups: res.TotalWarmups(), EnergyJ: float64(res.TotalEnergy()),
				})
			}
		}
	}

	f := os.Stdout
	if out != "-" {
		f, err = os.Create(out)
		if err != nil {
			return nil, err
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return nil, err
	}
	return rep, nil
}
