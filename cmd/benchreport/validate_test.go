package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"greenvm/internal/obs"
)

// TestValidateTimeSeriesRoundTrip: what obs.TimeSeries writes, the
// validator accepts — the contract CI relies on.
func TestValidateTimeSeriesRoundTrip(t *testing.T) {
	ts := obs.NewTimeSeries(0.0005, 0)
	for i := 0; i < 40; i++ {
		at := float64(i) * 0.0003
		ts.Add(at, "served", 1)
		ts.Add(at, obs.SeriesName("served", "backend", "s0"), 1)
		ts.Set(at, obs.SeriesName("depth", "backend", "s0"), float64(i%3))
	}
	var b bytes.Buffer
	if err := ts.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	n, err := validateTimeSeries(&b)
	if err != nil {
		t.Fatalf("round-trip rejected: %v", err)
	}
	if n != len(ts.Windows()) {
		t.Errorf("validated %d windows, recorder has %d", n, len(ts.Windows()))
	}
}

func TestValidateTimeSeriesRejects(t *testing.T) {
	hdr := `{"schema":"greenvm-timeseries/1","tick":0.5,"windows":2}`
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "missing header"},
		{"bad schema", `{"schema":"nope/9","tick":0.5,"windows":0}`, "schema"},
		{"zero tick", `{"schema":"greenvm-timeseries/1","tick":0,"windows":0}`, "tick"},
		{"negative windows", `{"schema":"greenvm-timeseries/1","tick":0.5,"windows":-1}`, "non-negative"},
		{"count mismatch", hdr + "\n" + `{"i":0,"t0":0,"t1":0.5}`, "found 1"},
		{"gap", hdr + "\n" + `{"i":0,"t0":0,"t1":0.5}` + "\n" + `{"i":2,"t0":1,"t1":1.5}`, "not contiguous"},
		{"misaligned", hdr + "\n" + `{"i":0,"t0":0,"t1":0.5}` + "\n" + `{"i":1,"t0":0.6,"t1":1}`, "not aligned"},
		{"negative counter", hdr + "\n" + `{"i":0,"t0":0,"t1":0.5,"c":{"served":-1}}` + "\n" + `{"i":1,"t0":0.5,"t1":1}`, "non-negative"},
		{"unknown field", hdr + "\n" + `{"i":0,"t0":0,"t1":0.5,"zz":1}` + "\n" + `{"i":1,"t0":0.5,"t1":1}`, "unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := validateTimeSeries(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

// TestValidatePromRoundTrip: the registry's Prometheus exposition —
// including a summary with streaming quantiles — passes the
// validator's summary contract.
func TestValidatePromRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("rt_requests_total", "requests").WithLabels("backend", "s0").Add(3)
	reg.Gauge("rt_depth", "queue depth").WithLabels().Set(2)
	h := reg.Histogram("rt_bytes", "payload bytes", []float64{16, 64, 256})
	h.Observe(40)
	s := reg.Summary("rt_wait_seconds", "queue wait").WithLabels("backend", "s0")
	for i := 0; i < 100; i++ {
		s.Observe(float64(i) / 100)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	n, err := validateProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("round-trip rejected: %v\n%s", err, b.String())
	}
	if n == 0 {
		t.Error("no samples validated")
	}
}

func TestValidatePromRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"malformed line", "what even is this\n", "malformed sample"},
		{"bad value", "x_total 1.2.3\n", "unparseable value"},
		{"summary missing sum",
			"# TYPE w summary\nw{quantile=\"0.5\"} 1\nw_count 2\n", "incomplete"},
		{"summary without quantile label",
			"# TYPE w summary\nw 1\n", "lacks a quantile"},
		{"quantile out of range",
			"# TYPE w summary\nw{quantile=\"1.5\"} 1\nw_sum 1\nw_count 1\n", "outside [0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := validateProm(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

// TestRunValidateFiles drives the -validate-ts/-validate-prom file
// mode end to end the way CI invokes it.
func TestRunValidateFiles(t *testing.T) {
	ts := obs.NewTimeSeries(0.001, 0)
	ts.Add(0.0004, "served", 1)
	ts.Add(0.0023, "served", 2)
	var jb bytes.Buffer
	if err := ts.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tsPath := dir + "/ts.jsonl"
	if err := os.WriteFile(tsPath, jb.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	reg.Summary("w_seconds", "w").WithLabels().Observe(1)
	var pb strings.Builder
	if err := reg.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	promPath := dir + "/metrics.txt"
	if err := os.WriteFile(promPath, []byte(pb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runValidate(&out, tsPath, promPath); err != nil {
		t.Fatalf("runValidate: %v", err)
	}
	if !strings.Contains(out.String(), "3 windows") || !strings.Contains(out.String(), "samples") {
		t.Errorf("unexpected validate output:\n%s", out.String())
	}
}
