package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"greenvm/internal/obs"
)

// Schema validation for the telemetry artifacts CI uploads: the
// fleetsim -timeseries JSONL and the registry's Prometheus text
// exposition. Both validators read a stream and fail loudly on the
// first violation, so a broken exporter turns a green artifact-upload
// step into a red one.

// runValidate drives the -validate-ts / -validate-prom modes. Either
// path may be "-" for stdin; both may be given in one invocation.
func runValidate(w io.Writer, tsPath, promPath string) error {
	open := func(path string) (io.ReadCloser, error) {
		if path == "-" {
			return io.NopCloser(os.Stdin), nil
		}
		return os.Open(path)
	}
	if tsPath != "" {
		f, err := open(tsPath)
		if err != nil {
			return err
		}
		n, err := validateTimeSeries(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", tsPath, err)
		}
		fmt.Fprintf(w, "%s: ok, %d windows\n", tsPath, n)
	}
	if promPath != "" {
		f, err := open(promPath)
		if err != nil {
			return err
		}
		n, err := validateProm(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", promPath, err)
		}
		fmt.Fprintf(w, "%s: ok, %d samples\n", promPath, n)
	}
	return nil
}

// tsFileHeader mirrors the obs.TimeSeries JSONL header line.
type tsFileHeader struct {
	Schema  string  `json:"schema"`
	Tick    float64 `json:"tick"`
	Windows int     `json:"windows"`
	Evicted int64   `json:"evicted"`
	Late    int64   `json:"late"`
}

// validateTimeSeries checks a timeseries JSONL stream: the header
// carries the known schema string, a positive finite tick and
// non-negative counts; every window line decodes with no unknown
// fields, indices are strictly contiguous, bounds equal exactly
// index*tick and (index+1)*tick (the writer computes them as products,
// so a reader may too), counters are finite and non-negative, gauges
// finite; and the window count matches the header. Returns the number
// of windows validated.
func validateTimeSeries(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return 0, err
		}
		return 0, fmt.Errorf("empty input: missing header line")
	}
	var hdr tsFileHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return 0, fmt.Errorf("header: %w", err)
	}
	if hdr.Schema != obs.TimeSeriesSchema {
		return 0, fmt.Errorf("header schema %q, want %q", hdr.Schema, obs.TimeSeriesSchema)
	}
	if !(hdr.Tick > 0) || math.IsInf(hdr.Tick, 0) {
		return 0, fmt.Errorf("header tick %g must be a positive finite width", hdr.Tick)
	}
	if hdr.Windows < 0 || hdr.Evicted < 0 || hdr.Late < 0 {
		return 0, fmt.Errorf("header counts must be non-negative (windows=%d evicted=%d late=%d)",
			hdr.Windows, hdr.Evicted, hdr.Late)
	}
	n := 0
	var prev int64
	for sc.Scan() {
		var w obs.Window
		dec := json.NewDecoder(bytes.NewReader(sc.Bytes()))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&w); err != nil {
			return n, fmt.Errorf("window line %d: %w", n+1, err)
		}
		if n > 0 && w.Index != prev+1 {
			return n, fmt.Errorf("window line %d: index %d not contiguous after %d", n+1, w.Index, prev)
		}
		if w.Start != float64(w.Index)*hdr.Tick || w.End != float64(w.Index+1)*hdr.Tick {
			return n, fmt.Errorf("window %d: bounds [%g,%g) not aligned to tick %g",
				w.Index, w.Start, w.End, hdr.Tick)
		}
		for name, v := range w.Counters {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return n, fmt.Errorf("window %d: counter %s = %g must be finite and non-negative",
					w.Index, name, v)
			}
		}
		for name, v := range w.Gauges {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return n, fmt.Errorf("window %d: gauge %s = %g must be finite", w.Index, name, v)
			}
		}
		prev = w.Index
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	if n != hdr.Windows {
		return n, fmt.Errorf("header says %d windows, found %d", hdr.Windows, n)
	}
	return n, nil
}

// promSampleRE matches one exposition sample: name, optional label
// braces, one space, value.
var promSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$`)

var promQuantileRE = regexp.MustCompile(`quantile="([^"]*)"`)

// validateProm checks a Prometheus text exposition: every
// non-comment line is a well-formed sample with a parseable value,
// and every family declared `# TYPE <name> summary` round-trips the
// summary contract — at least one quantile-labeled sample with a
// quantile in [0,1], plus matching _sum and _count samples. Returns
// the number of samples validated.
func validateProm(r io.Reader) (int, error) {
	type family struct {
		quantiles, sum, count bool
	}
	summaries := map[string]*family{}
	n, lineNo := 0, 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) == 4 && f[1] == "TYPE" && f[3] == "summary" {
				summaries[f[2]] = &family{}
			}
			continue
		}
		m := promSampleRE.FindStringSubmatch(line)
		if m == nil {
			return n, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		name, labels, value := m[1], m[2], m[3]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return n, fmt.Errorf("line %d: sample %s has unparseable value %q", lineNo, name, value)
		}
		switch {
		case summaries[name] != nil:
			qm := promQuantileRE.FindStringSubmatch(labels)
			if qm == nil {
				return n, fmt.Errorf("line %d: summary sample %s lacks a quantile label", lineNo, name)
			}
			q, err := strconv.ParseFloat(qm[1], 64)
			if err != nil || q < 0 || q > 1 {
				return n, fmt.Errorf("line %d: summary %s has quantile %q outside [0,1]", lineNo, name, qm[1])
			}
			summaries[name].quantiles = true
		case summaries[strings.TrimSuffix(name, "_sum")] != nil:
			summaries[strings.TrimSuffix(name, "_sum")].sum = true
		case summaries[strings.TrimSuffix(name, "_count")] != nil:
			summaries[strings.TrimSuffix(name, "_count")].count = true
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	names := make([]string, 0, len(summaries))
	for name := range summaries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := summaries[name]
		if !f.quantiles || !f.sum || !f.count {
			return n, fmt.Errorf("summary %s incomplete: quantiles=%v sum=%v count=%v",
				name, f.quantiles, f.sum, f.count)
		}
	}
	return n, nil
}
