package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rep(benches ...benchEntry) *report {
	return &report{Schema: 8, Benches: benches}
}

func TestCompareReportsPassesWithinThreshold(t *testing.T) {
	base := rep(benchEntry{Name: "FigureGrid/workers=1", NsPerOp: 1000})
	cur := rep(benchEntry{Name: "FigureGrid/workers=1", NsPerOp: 1140})
	lines, failed := compareReports(base, cur, 0.15, nil)
	if failed {
		t.Fatalf("+14%% flagged as regression: %v", lines)
	}
}

func TestCompareReportsFailsPastThreshold(t *testing.T) {
	base := rep(
		benchEntry{Name: "FigureGrid/workers=1", NsPerOp: 1000},
		benchEntry{Name: "Fleet/slots=1", NsPerOp: 500},
	)
	cur := rep(
		benchEntry{Name: "FigureGrid/workers=1", NsPerOp: 1200}, // +20%: regression
		benchEntry{Name: "Fleet/slots=1", NsPerOp: 400},         // improvement
	)
	lines, failed := compareReports(base, cur, 0.15, nil)
	if !failed {
		t.Fatalf("injected +20%% regression not flagged: %v", lines)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "REGRESSION") {
		t.Fatalf("diff lines missing REGRESSION marker:\n%s", joined)
	}
}

func TestCompareReportsAllowlist(t *testing.T) {
	base := rep(benchEntry{Name: "Fleet/slots=4", NsPerOp: 1000})
	cur := rep(benchEntry{Name: "Fleet/slots=4", NsPerOp: 2000})
	lines, failed := compareReports(base, cur, 0.15, map[string]bool{"Fleet/slots=4": true})
	if failed {
		t.Fatalf("allowlisted regression failed the gate: %v", lines)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "(allowed)") {
		t.Fatalf("allowlisted regression not reported: %v", lines)
	}
}

func TestCompareReportsNewAndMissingBenches(t *testing.T) {
	base := rep(benchEntry{Name: "Old", NsPerOp: 100})
	cur := rep(benchEntry{Name: "New", NsPerOp: 100})
	lines, failed := compareReports(base, cur, 0.15, nil)
	if failed {
		t.Fatalf("disjoint bench sets should be informational, got failure: %v", lines)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "new benchmark") || !strings.Contains(joined, "missing") {
		t.Fatalf("expected new/missing notes:\n%s", joined)
	}
}

// TestGateFileMode exercises the -compare/-against file-vs-file path
// end to end, the mode CI uses after producing the temp artifact.
func TestGateFileMode(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	basePath := write("base.json", `{"schema":8,"benches":[{"name":"FigureGrid/workers=1","n":1,"ns_per_op":1000}]}`)
	okPath := write("ok.json", `{"schema":8,"benches":[{"name":"FigureGrid/workers=1","n":1,"ns_per_op":1100}]}`)
	badPath := write("bad.json", `{"schema":8,"benches":[{"name":"FigureGrid/workers=1","n":1,"ns_per_op":2000}]}`)

	if err := run("", 0, basePath, okPath, 0.15, nil); err != nil {
		t.Fatalf("within-threshold compare failed: %v", err)
	}
	if err := run("", 0, basePath, badPath, 0.15, nil); err == nil {
		t.Fatal("2x regression passed the gate")
	}
	if err := run("", 0, basePath, badPath, 0.15, allowSet("FigureGrid/workers=1")); err != nil {
		t.Fatalf("allowlisted regression failed the gate: %v", err)
	}
}
