// Command mjserver runs the resource-rich execution and compilation
// server for an MJ application, speaking the core TCP protocol. A
// client in another process connects with core.DialServer and offloads
// potential methods to it — the paper's two-workstation prototype.
//
// Usage:
//
//	mjserver -listen :7033 app.{mj,mjc}
//	mjserver -listen :7033 -app mf          # serve a built-in benchmark
//	mjserver -listen :7033 -app mf -metrics :9033
//	mjserver -listen :7033 -app mf -workers 2 -queue 8
//
// -workers and -queue shape the admission control in front of the
// execution pool: requests beyond the worker pool wait in a bounded
// queue, and requests beyond the queue are shed with a busy error the
// clients price into their offload decisions.
//
// With -metrics the server additionally exposes its RPC metrics
// (requests, bytes, connections, recovered panics) over HTTP on the
// shared obs mux: Prometheus text at /metrics, a JSON snapshot at
// /metrics.json, and Go profiling under /debug/pprof/ — the same
// surface fleetsim -serve-metrics exposes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"greenvm/internal/apps"
	"greenvm/internal/bytecode"
	"greenvm/internal/core"
	"greenvm/internal/lang"
	"greenvm/internal/obs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7033", "address to listen on")
	app := flag.String("app", "", "serve a built-in benchmark instead of a file")
	metrics := flag.String("metrics", "", "serve RPC metrics over HTTP on this address (/metrics, /metrics.json)")
	workers := flag.Int("workers", core.DefaultWorkers, "execution worker pool size (admission control)")
	queue := flag.Int("queue", core.DefaultQueueCap, "admission queue capacity; requests beyond it are shed busy")
	flag.Parse()
	cfg := core.SessionConfig{Workers: *workers, QueueCap: *queue}
	if err := run(*listen, *app, *metrics, cfg, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "mjserver:", err)
		os.Exit(1)
	}
}

func run(listen, app, metrics string, cfg core.SessionConfig, args []string) error {
	var prog *bytecode.Program
	var err error
	switch {
	case app != "":
		a := apps.ByName(app)
		if a == nil {
			return fmt.Errorf("unknown benchmark %q", app)
		}
		prog, err = a.FreshProgram()
	case len(args) == 1:
		var data []byte
		if data, err = os.ReadFile(args[0]); err != nil {
			return err
		}
		if strings.HasSuffix(args[0], ".mjc") {
			if prog, err = bytecode.Decode(data); err != nil {
				return err
			}
			if err = prog.Link(); err != nil {
				return err
			}
			err = prog.Verify()
		} else {
			prog, err = lang.Compile(string(data))
		}
	default:
		return fmt.Errorf("usage: mjserver [-listen addr] (-app NAME | file.{mj,mjc})")
	}
	if err != nil {
		return err
	}

	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("mjserver: serving %d classes, %d methods on %s\n",
		len(prog.Classes), len(prog.Methods), l.Addr())
	for _, m := range prog.PotentialMethods() {
		fmt.Printf("  potential: %s\n", m.QName())
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting, close live
	// connections and drain in-flight handlers before exiting.
	srv := core.NewSessionTCPServer(core.NewSessionServer(core.NewServer(prog), cfg))
	if metrics != "" {
		collector := obs.NewRPCCollector(nil)
		srv.Metrics = collector
		ml, err := net.Listen("tcp", metrics)
		if err != nil {
			return err
		}
		fmt.Printf("mjserver: metrics on http://%s/metrics\n", ml.Addr())
		go http.Serve(ml, obs.HTTPHandler(collector.Registry(), obs.WithPprof())) //nolint:errcheck
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("mjserver: shutting down")
		srv.Close()
	}()
	if err := srv.Serve(l); !errors.Is(err, core.ErrServerClosed) {
		return err
	}
	return nil
}
