// Command mjvm runs a static method of an MJ program on the simulated
// mobile client and reports the energy consumed, per execution mode.
//
// Usage:
//
//	mjvm -call Class.method -args 1,2.5,3 [-mode I|L1|L2|L3|all] file.{mj,mjc}
//
// Scalar int and float arguments are supported on the command line;
// the examples/ directory shows the full offloading API, including
// reference arguments and the adaptive strategies.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
	"greenvm/internal/lang"
	"greenvm/internal/vm"
)

func main() {
	call := flag.String("call", "", "Class.method to invoke")
	argList := flag.String("args", "", "comma-separated int/float arguments")
	mode := flag.String("mode", "all", "execution mode: I, L1, L2, L3 or all")
	flag.Parse()
	if flag.NArg() != 1 || *call == "" {
		fmt.Fprintln(os.Stderr, "usage: mjvm -call Class.method [-args 1,2,3] [-mode all] file.{mj,mjc}")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *call, *argList, *mode); err != nil {
		fmt.Fprintln(os.Stderr, "mjvm:", err)
		os.Exit(1)
	}
}

func run(path, call, argList, mode string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var prog *bytecode.Program
	if strings.HasSuffix(path, ".mjc") {
		if prog, err = bytecode.Decode(data); err != nil {
			return err
		}
		if err := prog.Link(); err != nil {
			return err
		}
		if err := prog.Verify(); err != nil {
			return err
		}
	} else if prog, err = lang.Compile(string(data)); err != nil {
		return err
	}

	dot := strings.LastIndex(call, ".")
	if dot < 0 {
		return fmt.Errorf("-call must be Class.method, got %q", call)
	}
	m := prog.FindMethod(call[:dot], call[dot+1:])
	if m == nil {
		return fmt.Errorf("no method %s", call)
	}
	if !m.Static {
		return fmt.Errorf("%s is an instance method; the CLI invokes statics", call)
	}

	args, err := parseArgs(m, argList)
	if err != nil {
		return err
	}

	modes := []string{"I", "L1", "L2", "L3"}
	if mode != "all" {
		modes = []string{mode}
	}
	for _, md := range modes {
		v := vm.New(prog, energy.MicroSPARCIIep())
		label := md
		switch md {
		case "I":
		case "L1", "L2", "L3":
			lv := jit.Level(md[1] - '0')
			bodies := map[*bytecode.Method]*isa.Code{}
			compileAcct := energy.NewAccount(v.Model)
			for _, mm := range prog.Methods {
				if len(mm.Code) == 0 {
					continue
				}
				code, st, err := jit.Compile(prog, mm, lv)
				if err != nil {
					return err
				}
				st.Charge(compileAcct)
				bodies[mm] = v.InstallCode(code)
			}
			v.Dispatch = vm.DispatchFunc(func(mm *bytecode.Method) *isa.Code { return bodies[mm] })
			label = fmt.Sprintf("%s (compile cost %v)", md, compileAcct.Total())
		default:
			return fmt.Errorf("unknown mode %q", md)
		}
		res, err := v.Invoke(m, args)
		if err != nil {
			return err
		}
		fmt.Printf("mode %-28s result=%s\n", label, formatResult(m, res))
		fmt.Printf("  energy: %v\n", v.Acct)
	}
	return nil
}

func parseArgs(m *bytecode.Method, list string) ([]vm.Slot, error) {
	var parts []string
	if list != "" {
		parts = strings.Split(list, ",")
	}
	kinds := m.ArgKinds()
	if len(parts) != len(kinds) {
		return nil, fmt.Errorf("%s takes %d arguments, got %d", m.QName(), len(kinds), len(parts))
	}
	args := make([]vm.Slot, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		switch kinds[i] {
		case bytecode.KInt:
			v, err := strconv.ParseInt(p, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("argument %d: %v", i, err)
			}
			args[i] = vm.IntSlot(int32(v))
		case bytecode.KFloat:
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return nil, fmt.Errorf("argument %d: %v", i, err)
			}
			args[i] = vm.FloatSlot(v)
		default:
			return nil, fmt.Errorf("argument %d is a reference; use the library API", i)
		}
	}
	return args, nil
}

func formatResult(m *bytecode.Method, res vm.Slot) string {
	switch m.Ret.Kind {
	case bytecode.KVoid:
		return "(void)"
	case bytecode.KFloat:
		return fmt.Sprintf("%g", res.F)
	case bytecode.KRef:
		return fmt.Sprintf("ref#%d", res.I)
	default:
		return fmt.Sprintf("%d", res.I)
	}
}
