package main

import (
	"os"
	"path/filepath"
	"testing"
)

const testSrc = `
class T {
  static int add(int a, int b) { return a + b; }
  static float scale(float x) { return x * 2.0; }
  int inst() { return 1; }
}
`

func writeSrc(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	p := filepath.Join(dir, "t.mj")
	if err := os.WriteFile(p, []byte(testSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunAllModes(t *testing.T) {
	p := writeSrc(t)
	if err := run(p, "T.add", "3,4", "all"); err != nil {
		t.Fatal(err)
	}
	if err := run(p, "T.scale", "1.5", "L2"); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	p := writeSrc(t)
	cases := []struct {
		call, args, mode string
	}{
		{"Nope.add", "1,2", "I"},
		{"T.add", "1", "I"},    // arity
		{"T.add", "x,y", "I"},  // parse
		{"T.add", "1,2", "L9"}, // mode
		{"T.inst", "", "I"},    // instance method
		{"noDot", "", "I"},     // malformed call
	}
	for _, c := range cases {
		if err := run(p, c.call, c.args, c.mode); err == nil {
			t.Errorf("run(%q,%q,%q) should error", c.call, c.args, c.mode)
		}
	}
}
