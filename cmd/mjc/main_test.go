package main

import (
	"os"
	"path/filepath"
	"testing"
)

const testSrc = `
class T {
  static int twice(int x) { return x * 2; }
  potential static int heavy(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + i; }
    return s;
  }
}
`

func TestCompileListDisasm(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "t.mj")
	if err := os.WriteFile(src, []byte(testSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "t.mjc")
	if err := run(src, out, false, false); err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("output missing: %v", err)
	}
	// The class file loads, lists and disassembles.
	if err := run(out, "", true, false); err != nil {
		t.Fatalf("list: %v", err)
	}
	if err := run(out, "", false, true); err != nil {
		t.Fatalf("disasm: %v", err)
	}
	// Compiling a .mjc is rejected.
	if err := run(out, "", false, false); err == nil {
		t.Error("recompiling a class file should error")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := load("/nonexistent/x.mj"); err == nil {
		t.Error("missing file should error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.mj")
	os.WriteFile(bad, []byte("class {"), 0o644)
	if _, err := load(bad); err == nil {
		t.Error("bad source should error")
	}
	corrupt := filepath.Join(dir, "bad.mjc")
	os.WriteFile(corrupt, []byte("not a class file"), 0o644)
	if _, err := load(corrupt); err == nil {
		t.Error("corrupt class file should error")
	}
}
