// Command mjc compiles MJ source files to MJVM class files and
// inspects existing class files.
//
// Usage:
//
//	mjc file.mj                 compile to file.mjc
//	mjc -o out.mjc file.mj      compile to a chosen path
//	mjc -list file.mjc          list classes and methods
//	mjc -disasm file.mjc        disassemble every method
//	mjc -disasm file.mj         compile in memory and disassemble
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"greenvm/internal/bytecode"
	"greenvm/internal/lang"
)

func main() {
	out := flag.String("o", "", "output class file (default: input with .mjc)")
	list := flag.Bool("list", false, "list classes and methods")
	disasm := flag.Bool("disasm", false, "disassemble methods")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mjc [-o out.mjc] [-list] [-disasm] file.{mj,mjc}")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *out, *list, *disasm); err != nil {
		fmt.Fprintln(os.Stderr, "mjc:", err)
		os.Exit(1)
	}
}

func run(path, out string, list, disasm bool) error {
	prog, err := load(path)
	if err != nil {
		return err
	}
	switch {
	case list:
		for _, c := range prog.Classes {
			ext := ""
			if c.SuperName != "" {
				ext = " extends " + c.SuperName
			}
			fmt.Printf("class %s%s (%d fields)\n", c.Name, ext, len(c.Fields))
			for _, m := range c.Methods {
				tag := ""
				if m.Potential {
					tag = " [potential]"
				}
				if m.Static {
					tag += " [static]"
				}
				fmt.Printf("  %s%s  (%d bytecodes, %d B)\n",
					bytecode.Signature(m.Name, m.Params, m.Ret), tag, len(m.Code), m.CodeSize())
			}
		}
		return nil
	case disasm:
		for _, m := range prog.Methods {
			fmt.Println(bytecode.Disassemble(m))
		}
		return nil
	default:
		if strings.HasSuffix(path, ".mjc") {
			return fmt.Errorf("%s is already a class file", path)
		}
		if out == "" {
			out = strings.TrimSuffix(path, ".mj") + ".mjc"
		}
		b, err := prog.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d classes, %d methods, %d bytes)\n",
			out, len(prog.Classes), len(prog.Methods), len(b))
		return nil
	}
}

// load reads either MJ source or a binary class file.
func load(path string) (*bytecode.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".mjc") {
		prog, err := bytecode.Decode(data)
		if err != nil {
			return nil, err
		}
		if err := prog.Link(); err != nil {
			return nil, err
		}
		if err := prog.Verify(); err != nil {
			return nil, err
		}
		return prog, nil
	}
	return lang.Compile(string(data))
}
