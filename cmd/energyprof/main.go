// Command energyprof prints the platform energy model (the paper's
// Fig 1 and Fig 2 constants plus derived quantities) and, with -app,
// profiles benchmark applications: per-mode energy/time curves,
// serialized payload sizes, and compilation costs per level. With
// -outage it additionally drives a short scenario per strategy under
// a Gilbert–Elliott burst-outage process and prints each client's
// link telemetry (exchanges, losses, stalls, bytes) plus the
// retry/breaker counters.
//
// The observability flags drive an observed AL/AA scenario (situation
// iii, -runs executions per cell) with the internal/obs sinks
// attached: -audit prints per-method estimator prediction error and
// regret, -metrics writes per-cell Prometheus text, -trace-out writes
// a Chrome trace-event JSON timeline (open in chrome://tracing or
// Perfetto). Without -app they default to the fe and pf benchmarks.
package main

import (
	"context"

	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"greenvm/internal/apps"
	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/experiments"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
)

func main() {
	app := flag.String("app", "", "profile benchmarks: a name (fe, pf, mf, hpf, ed, sort, jess, db), a comma-separated list, or \"all\"")
	seed := flag.Uint64("seed", 2003, "profiling seed")
	workers := flag.Int("workers", 0, "parallel profiling workers (0 = GOMAXPROCS)")
	outage := flag.Float64("outage", 0, "with -app: drive a faulty scenario at this outage rate and print link telemetry")
	burst := flag.Float64("burst", 5, "mean outage burst length in transfers (with -outage)")
	runs := flag.Int("runs", 30, "application executions per telemetry scenario (with -outage)")
	audit := flag.Bool("audit", false, "print per-method estimator prediction error and regret for AL and AA")
	metricsOut := flag.String("metrics", "", "write per-cell Prometheus metrics of the observed scenario to FILE (\"-\" = stdout)")
	traceOut := flag.String("trace-out", "", "write the observed scenario's Chrome trace-event JSON to FILE")
	flag.Parse()

	observing := *audit || *metricsOut != "" || *traceOut != ""
	if *app == "" {
		if !observing {
			renderPlatform(os.Stdout)
			return
		}
		*app = "fe,pf"
	}

	list, err := selectApps(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "energyprof:", err)
		os.Exit(1)
	}
	envs, err := experiments.PrepareAllOn(experiments.NewRunner(*workers), list, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "energyprof:", err)
		os.Exit(1)
	}
	for i, env := range envs {
		if i > 0 {
			fmt.Println()
		}
		renderProfile(os.Stdout, env.App, env.Prof)
		if *outage > 0 {
			fmt.Println()
			if err := renderTelemetry(os.Stdout, env, *outage, *burst, *runs, *seed); err != nil {
				fmt.Fprintln(os.Stderr, "energyprof:", err)
				os.Exit(1)
			}
		}
	}
	if observing {
		if err := runObserved(envs, *runs, *seed, *workers, *audit, *metricsOut, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "energyprof:", err)
			os.Exit(1)
		}
	}
}

// runObserved drives the AL and AA strategies over every selected app
// in the uniform situation with the observability sinks attached, and
// renders the requested artifacts.
func runObserved(envs []*experiments.Env, runs int, seed uint64, workers int,
	audit bool, metricsOut, traceOut string) error {

	cells, err := experiments.RunObservedOn(experiments.NewRunner(workers), envs,
		[]core.Strategy{core.StrategyAL, core.StrategyAA},
		experiments.SitUniform, runs, seed)
	if err != nil {
		return err
	}
	if audit {
		fmt.Printf("\nestimator audit: AL and AA, situation %v, %d executions per cell\n\n",
			experiments.SitUniform, runs)
		experiments.RenderAudits(os.Stdout, cells)
	}
	if metricsOut != "" {
		if err := writeArtifact(metricsOut, func(w io.Writer) error {
			return experiments.WriteMetricsDump(w, cells)
		}); err != nil {
			return err
		}
	}
	if traceOut != "" {
		if err := writeArtifact(traceOut, func(w io.Writer) error {
			return experiments.WriteTrace(w, cells)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote trace for %d cells to %s (open in chrome://tracing or Perfetto)\n",
			len(cells), traceOut)
	}
	return nil
}

// writeArtifact writes through fn to the named file, or to stdout for
// "-".
func writeArtifact(name string, fn func(io.Writer) error) error {
	if name == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// renderTelemetry drives one short scenario per strategy over a lossy
// link and prints the radio counters surfaced through the Stats sink.
func renderTelemetry(w *os.File, env *experiments.Env, outage, burst float64, runs int, seed uint64) error {
	fmt.Fprintf(w, "link telemetry under outage %.2f, mean burst %.0f (%d executions)\n\n", outage, burst, runs)
	fmt.Fprintf(w, "%-9s %10s | %6s %6s %6s %6s %9s %9s | %5s %5s %5s\n",
		"strategy", "energy", "exchg", "loss", "rtx", "stall", "tx B", "rx B", "retry", "probe", "down")
	for _, s := range core.Strategies {
		server := core.NewServer(env.Prog)
		c := core.New(core.ClientConfig{
			ID:       fmt.Sprintf("%s-%v", env.App.Name, s),
			Prog:     env.Prog,
			Server:   server,
			Channel:  radio.UniformChannel(rng.New(seed)),
			Strategy: s,
			Seed:     seed,
		}, core.WithFaultModel(radio.NewGilbertElliott(outage, burst)))
		if err := c.Register(env.Target, env.Prof); err != nil {
			return err
		}
		sizes := env.App.ScenarioSizes
		sizeR := rng.New(seed ^ 0xABCD)
		for run := 0; run < runs; run++ {
			size := sizes[sizeR.Intn(len(sizes))]
			args, err := env.Target.MakeArgs(c.VM, size, rng.New(seed+uint64(size)))
			if err != nil {
				return err
			}
			c.NewExecution()
			if _, err := c.Invoke(context.Background(), env.App.Class, env.App.Method, args); err != nil {
				return err
			}
			c.StepChannel()
		}
		tel := c.Stats.Radio // the EvInvoke stream's last snapshot
		fmt.Fprintf(w, "%-9v %10v | %6d %6d %6d %6d %9d %9d | %5d %5d %5d\n",
			s, c.Energy(), tel.Exchanges, tel.Losses, tel.Retransmits, tel.Stalls,
			tel.BytesSent, tel.BytesReceived,
			c.Stats.Retries, c.Stats.Probes, c.Stats.LinkDowns)
	}
	return nil
}

// selectApps resolves the -app argument to a benchmark list.
func selectApps(arg string) ([]*apps.App, error) {
	if arg == "all" {
		return apps.All(), nil
	}
	var list []*apps.App
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		a := apps.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown app %q", name)
		}
		list = append(list, a)
	}
	return list, nil
}

// renderPlatform prints the platform energy model.
func renderPlatform(w *os.File) {
	experiments.RenderFig1(w)
	fmt.Fprintln(w)
	experiments.RenderFig2(w)
	fmt.Fprintln(w)
	model := energy.MicroSPARCIIep()
	fmt.Fprintf(w, "compiler-classes load/init: %v per execution that compiles locally\n",
		jit.CompilerLoadEnergy(model))
	chip := radio.WCDMA()
	fmt.Fprintf(w, "per-KB transfer at Class 4: tx %v, rx %v\n",
		chip.TxEnergy(1024, radio.Class4), chip.RxEnergy(1024, radio.Class4))
	fmt.Fprintf(w, "per-KB transfer at Class 1: tx %v, rx %v\n",
		chip.TxEnergy(1024, radio.Class1), chip.RxEnergy(1024, radio.Class1))
}

// renderProfile prints one app's profiled curves and compile costs.
func renderProfile(w *os.File, a *apps.App, prof *core.Profile) {
	fmt.Fprintf(w, "%s — %s (size parameter: %s)\n\n", a.Name, a.Desc, a.SizeDesc)
	fmt.Fprintf(w, "%8s | %11s %11s %11s %11s | %9s %9s | %10s\n",
		"size", "I", "L1", "L2", "L3", "tx B", "rx B", "server t")
	for _, s := range a.ProfileSizes {
		x := float64(s)
		fmt.Fprintf(w, "%8d | %11v %11v %11v %11v | %9.0f %9.0f | %8.2f ms\n",
			s,
			energy.Joules(prof.EnergyOf[core.ModeInterp].Eval(x)),
			energy.Joules(prof.EnergyOf[core.ModeL1].Eval(x)),
			energy.Joules(prof.EnergyOf[core.ModeL2].Eval(x)),
			energy.Joules(prof.EnergyOf[core.ModeL3].Eval(x)),
			prof.TxBytes.Eval(x), prof.RxBytes.Eval(x),
			prof.ServerTime.Eval(x)*1e3)
	}
	fmt.Fprintln(w)
	for lv := 0; lv < 3; lv++ {
		fmt.Fprintf(w, "compile plan at L%d: %v, %d B native code\n",
			lv+1, prof.CompileEnergy[lv], prof.PlanCodeBytes[lv])
	}
	fmt.Fprintf(w, "worst training-fit error: %.2f%%\n", prof.MaxFitErr*100)
}
