// Command energyprof prints the platform energy model (the paper's
// Fig 1 and Fig 2 constants plus derived quantities) and, with -app,
// profiles benchmark applications: per-mode energy/time curves,
// serialized payload sizes, and compilation costs per level.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"greenvm/internal/apps"
	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/experiments"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
)

func main() {
	app := flag.String("app", "", "profile benchmarks: a name (fe, pf, mf, hpf, ed, sort, jess, db), a comma-separated list, or \"all\"")
	seed := flag.Uint64("seed", 2003, "profiling seed")
	workers := flag.Int("workers", 0, "parallel profiling workers (0 = GOMAXPROCS)")
	flag.Parse()

	if *app == "" {
		renderPlatform(os.Stdout)
		return
	}

	list, err := selectApps(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "energyprof:", err)
		os.Exit(1)
	}
	envs, err := experiments.PrepareAllOn(experiments.NewRunner(*workers), list, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "energyprof:", err)
		os.Exit(1)
	}
	for i, env := range envs {
		if i > 0 {
			fmt.Println()
		}
		renderProfile(os.Stdout, env.App, env.Prof)
	}
}

// selectApps resolves the -app argument to a benchmark list.
func selectApps(arg string) ([]*apps.App, error) {
	if arg == "all" {
		return apps.All(), nil
	}
	var list []*apps.App
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		a := apps.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown app %q", name)
		}
		list = append(list, a)
	}
	return list, nil
}

// renderPlatform prints the platform energy model.
func renderPlatform(w *os.File) {
	experiments.RenderFig1(w)
	fmt.Fprintln(w)
	experiments.RenderFig2(w)
	fmt.Fprintln(w)
	model := energy.MicroSPARCIIep()
	fmt.Fprintf(w, "compiler-classes load/init: %v per execution that compiles locally\n",
		jit.CompilerLoadEnergy(model))
	chip := radio.WCDMA()
	fmt.Fprintf(w, "per-KB transfer at Class 4: tx %v, rx %v\n",
		chip.TxEnergy(1024, radio.Class4), chip.RxEnergy(1024, radio.Class4))
	fmt.Fprintf(w, "per-KB transfer at Class 1: tx %v, rx %v\n",
		chip.TxEnergy(1024, radio.Class1), chip.RxEnergy(1024, radio.Class1))
}

// renderProfile prints one app's profiled curves and compile costs.
func renderProfile(w *os.File, a *apps.App, prof *core.Profile) {
	fmt.Fprintf(w, "%s — %s (size parameter: %s)\n\n", a.Name, a.Desc, a.SizeDesc)
	fmt.Fprintf(w, "%8s | %11s %11s %11s %11s | %9s %9s | %10s\n",
		"size", "I", "L1", "L2", "L3", "tx B", "rx B", "server t")
	for _, s := range a.ProfileSizes {
		x := float64(s)
		fmt.Fprintf(w, "%8d | %11v %11v %11v %11v | %9.0f %9.0f | %8.2f ms\n",
			s,
			energy.Joules(prof.EnergyOf[core.ModeInterp].Eval(x)),
			energy.Joules(prof.EnergyOf[core.ModeL1].Eval(x)),
			energy.Joules(prof.EnergyOf[core.ModeL2].Eval(x)),
			energy.Joules(prof.EnergyOf[core.ModeL3].Eval(x)),
			prof.TxBytes.Eval(x), prof.RxBytes.Eval(x),
			prof.ServerTime.Eval(x)*1e3)
	}
	fmt.Fprintln(w)
	for lv := 0; lv < 3; lv++ {
		fmt.Fprintf(w, "compile plan at L%d: %v, %d B native code\n",
			lv+1, prof.CompileEnergy[lv], prof.PlanCodeBytes[lv])
	}
	fmt.Fprintf(w, "worst training-fit error: %.2f%%\n", prof.MaxFitErr*100)
}
