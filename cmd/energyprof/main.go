// Command energyprof prints the platform energy model (the paper's
// Fig 1 and Fig 2 constants plus derived quantities) and, with -app,
// profiles one benchmark application: per-mode energy/time curves,
// serialized payload sizes, and compilation costs per level.
package main

import (
	"flag"
	"fmt"
	"os"

	"greenvm/internal/apps"
	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/experiments"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
)

func main() {
	app := flag.String("app", "", "profile one benchmark (fe, pf, mf, hpf, ed, sort, jess, db)")
	seed := flag.Uint64("seed", 2003, "profiling seed")
	flag.Parse()

	if *app == "" {
		experiments.RenderFig1(os.Stdout)
		fmt.Println()
		experiments.RenderFig2(os.Stdout)
		fmt.Println()
		model := energy.MicroSPARCIIep()
		fmt.Printf("compiler-classes load/init: %v per execution that compiles locally\n",
			jit.CompilerLoadEnergy(model))
		chip := radio.WCDMA()
		fmt.Printf("per-KB transfer at Class 4: tx %v, rx %v\n",
			chip.TxEnergy(1024, radio.Class4), chip.RxEnergy(1024, radio.Class4))
		fmt.Printf("per-KB transfer at Class 1: tx %v, rx %v\n",
			chip.TxEnergy(1024, radio.Class1), chip.RxEnergy(1024, radio.Class1))
		return
	}

	a := apps.ByName(*app)
	if a == nil {
		fmt.Fprintf(os.Stderr, "energyprof: unknown app %q\n", *app)
		os.Exit(1)
	}
	prog, err := a.FreshProgram()
	if err != nil {
		fmt.Fprintln(os.Stderr, "energyprof:", err)
		os.Exit(1)
	}
	pr := &core.Profiler{
		Prog:        prog,
		ClientModel: energy.MicroSPARCIIep(),
		ServerModel: energy.ServerSPARC(),
		Seed:        *seed,
	}
	t := a.Target()
	prof, err := pr.ProfileTarget(t)
	if err != nil {
		fmt.Fprintln(os.Stderr, "energyprof:", err)
		os.Exit(1)
	}
	fmt.Printf("%s — %s (size parameter: %s)\n\n", a.Name, a.Desc, a.SizeDesc)
	fmt.Printf("%8s | %11s %11s %11s %11s | %9s %9s | %10s\n",
		"size", "I", "L1", "L2", "L3", "tx B", "rx B", "server t")
	for _, s := range a.ProfileSizes {
		x := float64(s)
		fmt.Printf("%8d | %11v %11v %11v %11v | %9.0f %9.0f | %8.2f ms\n",
			s,
			energy.Joules(prof.EnergyOf[core.ModeInterp].Eval(x)),
			energy.Joules(prof.EnergyOf[core.ModeL1].Eval(x)),
			energy.Joules(prof.EnergyOf[core.ModeL2].Eval(x)),
			energy.Joules(prof.EnergyOf[core.ModeL3].Eval(x)),
			prof.TxBytes.Eval(x), prof.RxBytes.Eval(x),
			prof.ServerTime.Eval(x)*1e3)
	}
	fmt.Println()
	for lv := 0; lv < 3; lv++ {
		fmt.Printf("compile plan at L%d: %v, %d B native code\n",
			lv+1, prof.CompileEnergy[lv], prof.PlanCodeBytes[lv])
	}
	fmt.Printf("worst training-fit error: %.2f%%\n", prof.MaxFitErr*100)
}
