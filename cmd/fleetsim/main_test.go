package main

import (
	"strings"
	"testing"

	"greenvm/internal/fleet"
)

func TestParseConfigValidCombos(t *testing.T) {
	cases := []struct {
		name                     string
		clients, servers, places string
		workers, queue           int
		sweep                    bool
		wantServers              []int
		wantPlaces               []fleet.Placement
	}{
		{"defaults", "32", "1", "cheapest", 4, 16, false, []int{1}, []fleet.Placement{fleet.PlaceCheapest}},
		{"multi server single run", "16", "4", "p2c", 8, 4, false, []int{4}, []fleet.Placement{fleet.PlaceP2C}},
		{"no waiting", "8", "2", "hash", 2, -1, false, []int{2}, []fleet.Placement{fleet.PlaceHash}},
		{"sweep lists", "8,16", "1,2,4", "cheapest,p2c", 4, 16, true,
			[]int{1, 2, 4}, []fleet.Placement{fleet.PlaceCheapest, fleet.PlaceP2C}},
		{"sweep all placements", "8", "2", "all", 4, 16, true,
			[]int{2}, []fleet.Placement{fleet.PlaceCheapest, fleet.PlaceHash, fleet.PlaceP2C}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := parseConfig(tc.clients, tc.servers, tc.places, tc.workers, tc.queue, tc.sweep)
			if err != nil {
				t.Fatalf("parseConfig: %v", err)
			}
			if len(cfg.serverNs) != len(tc.wantServers) {
				t.Fatalf("server counts %v, want %v", cfg.serverNs, tc.wantServers)
			}
			for i, n := range tc.wantServers {
				if cfg.serverNs[i] != n {
					t.Errorf("serverNs[%d] = %d, want %d", i, cfg.serverNs[i], n)
				}
			}
			if len(cfg.placements) != len(tc.wantPlaces) {
				t.Fatalf("placements %v, want %v", cfg.placements, tc.wantPlaces)
			}
			for i, p := range tc.wantPlaces {
				if cfg.placements[i] != p {
					t.Errorf("placements[%d] = %v, want %v", i, cfg.placements[i], p)
				}
			}
		})
	}
}

func TestParseConfigRejectsNonsense(t *testing.T) {
	cases := []struct {
		name                     string
		clients, servers, places string
		workers, queue           int
		sweep                    bool
		wantErr                  string
	}{
		{"zero servers", "8", "0", "cheapest", 4, 16, false, "-servers"},
		{"negative servers", "8", "-2", "cheapest", 4, 16, false, "-servers"},
		{"zero clients", "0", "1", "cheapest", 4, 16, false, "-clients"},
		{"garbage servers", "8", "two", "cheapest", 4, 16, false, "-servers"},
		{"zero workers", "8", "1", "cheapest", 0, 16, false, "at least one worker"},
		{"negative workers", "8", "1", "cheapest", -3, 16, false, "at least one worker"},
		{"ambiguous queue zero", "8", "1", "cheapest", 4, 0, false, "-queue 0 is ambiguous"},
		{"deep negative queue", "8", "1", "cheapest", 4, -5, false, "meaningless"},
		{"workers do not split", "8", "3", "cheapest", 4, 16, false, "split evenly"},
		{"sweep split check covers every count", "8", "2,3", "cheapest", 4, 16, true, "split evenly"},
		{"client list without sweep", "8,16", "1", "cheapest", 4, 16, false, "add -sweep"},
		{"server list without sweep", "8", "1,2", "cheapest", 4, 16, false, "add -sweep"},
		{"placement list without sweep", "8", "1", "cheapest,p2c", 4, 16, false, "add -sweep"},
		{"unknown placement", "8", "1", "round-robin", 4, 16, false, "unknown placement"},
		{"empty placement", "8", "1", ",", 4, 16, false, "no placements"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseConfig(tc.clients, tc.servers, tc.places, tc.workers, tc.queue, tc.sweep)
			if err == nil {
				t.Fatal("parseConfig accepted a nonsensical combination")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestServerConfigSplitsAggregateBudget(t *testing.T) {
	cfg, err := parseConfig("8", "1,2,4", "all", 8, 4, true)
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	for _, n := range cfg.serverNs {
		sc := cfg.serverConfig(n)
		if sc.Workers*n != 8 {
			t.Errorf("%d servers x %d workers != aggregate 8", n, sc.Workers)
		}
		if sc.QueueCap != 4 {
			t.Errorf("queue capacity %d is not per backend", sc.QueueCap)
		}
	}
}

func TestParsePlacementSuggestsOnTypo(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"chepest", `did you mean "cheapest"`},
		{"hsah", `did you mean "hash"`},
		{"p2", `did you mean "p2c"`},
		{"round-robin", "valid: cheapest, hash, p2c"},
	}
	for _, tc := range cases {
		_, err := fleet.ParsePlacement(tc.in)
		if err == nil {
			t.Fatalf("ParsePlacement(%q) accepted a bad value", tc.in)
		}
		if !strings.Contains(err.Error(), "unknown placement") {
			t.Errorf("ParsePlacement(%q) error %q does not say unknown placement", tc.in, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParsePlacement(%q) error %q does not contain %q", tc.in, err, tc.want)
		}
	}
}

func TestParseChaosValid(t *testing.T) {
	chaos, err := parseChaos("s1@0.002", "s0@0.001/0.002/0.004", "s0@0.0005+0.01x8", "s1:0.35/4", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(chaos) != 2 {
		t.Fatalf("chaos specs for %d backends, want 2", len(chaos))
	}
	if chaos[0].FlapAt != 0.001 || chaos[0].FlapDown != 0.002 || chaos[0].FlapEvery != 0.004 {
		t.Errorf("s0 flap = %+v", chaos[0])
	}
	if chaos[0].BrownoutAt != 0.0005 || chaos[0].BrownoutFor != 0.01 || chaos[0].BrownoutFactor != 8 {
		t.Errorf("s0 brownout = %+v", chaos[0])
	}
	if chaos[1].FailAt != 0.002 {
		t.Errorf("s1 fail = %+v", chaos[1])
	}
	if chaos[1].LossRate != 0.35 || chaos[1].LossBurst != 4 {
		t.Errorf("s1 loss = %+v", chaos[1])
	}
	if c, err := parseChaos("", "", "", "", 4); err != nil || c != nil {
		t.Errorf("empty chaos flags = (%v, %v), want (nil, nil)", c, err)
	}
}

func TestParseChaosRejectsNonsense(t *testing.T) {
	cases := []struct {
		name                       string
		fail, flap, brownout, loss string
		wantErr                    string
	}{
		{"unknown backend", "s7@0.002", "", "", "", "unknown backend"},
		{"fail missing time", "s0", "", "", "", "want name@time"},
		{"fail negative time", "s0@-1", "", "", "", "positive duration"},
		{"flap too many fields", "", "s0@0.1/0.2/0.3/0.4", "", "", "at most"},
		{"brownout missing factor", "", "", "s0@0.0005", "", "xfactor"},
		{"brownout factor too small", "", "", "s0@0.0005x1", "", "must be > 1"},
		{"loss missing rate", "", "", "", "s0", "want name:rate"},
		{"loss rate out of range", "", "", "", "s0:1.5", "must be in (0, 1)"},
		{"loss burst too small", "", "", "", "s0:0.3/0.5", "must be >= 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseChaos(tc.fail, tc.flap, tc.brownout, tc.loss, 2)
			if err == nil {
				t.Fatal("parseChaos accepted nonsense")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestTelemetryFlagsValidate(t *testing.T) {
	cases := []struct {
		name    string
		tf      telemetryFlags
		sweep   bool
		chaos   bool
		wantErr string
	}{
		{"off ignores everything", telemetryFlags{}, true, true, ""},
		{"timeseries alone", telemetryFlags{path: "ts.jsonl", tick: 0.0005}, false, false, ""},
		{"serve alone", telemetryFlags{serve: ":0", tick: 0.0005}, false, false, ""},
		{"timeseries with sweep", telemetryFlags{path: "ts.jsonl", tick: 0.0005}, true, false, "single run"},
		{"serve with chaos sweep", telemetryFlags{serve: ":0", tick: 0.0005}, false, true, "single run"},
		{"zero tick", telemetryFlags{path: "ts.jsonl"}, false, false, "must be positive"},
		{"negative tick", telemetryFlags{path: "ts.jsonl", tick: -1}, false, false, "must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.tf.validate(tc.sweep, tc.chaos)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %v does not mention %q", err, tc.wantErr)
			}
		})
	}
}
