// Command fleetsim simulates a fleet of Java-enabled handsets sharing
// one offload server, sweeping fleet size against offload strategy to
// show how the server's admission control (bounded worker pool plus a
// bounded queue) degrades: queue waits grow, requests are shed with
// busy errors, and the adaptive strategies price those errors into
// their decisions and shift work back to local execution.
//
// Usage:
//
//	fleetsim -app fe                          # default 32-client fleet
//	fleetsim -app fe -clients 8,16,32,64 -sweep
//	fleetsim -app fe -clients 16 -strategies AA,AL,R -server-workers 2 -queue 4
//	fleetsim -app fe -clients 32 -metrics fleet.json
//
// Every run is deterministic for a given -seed: the engine resolves
// the fleet's contention in virtual time, so the concurrency level
// (-concurrency) changes only wall-clock time, never results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"greenvm/internal/apps"
	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/experiments"
	"greenvm/internal/fleet"
)

func main() {
	app := flag.String("app", "fe", "built-in benchmark the fleet runs")
	clients := flag.String("clients", "32", "fleet size, or a comma-separated list for -sweep")
	execs := flag.Int("execs", 4, "application executions per client")
	strategies := flag.String("strategies", "R,AL,AA", "comma-separated strategy mix cycled across clients")
	workers := flag.Int("server-workers", core.DefaultWorkers, "server execution worker pool size")
	queue := flag.Int("queue", core.DefaultQueueCap, "server admission queue capacity (negative: no waiting)")
	seed := flag.Uint64("seed", 42, "base seed; same seed, same results")
	concurrency := flag.Int("concurrency", 0, "client goroutines simulated in parallel (0 = GOMAXPROCS)")
	sweep := flag.Bool("sweep", false, "print the fleet-size x strategy aggregate table instead of one run's detail")
	metrics := flag.String("metrics", "", "write the run's observability snapshot (JSON) to this file; '-' for stdout")
	flag.Parse()

	if err := run(*app, *clients, *execs, *strategies, *workers, *queue,
		*seed, *concurrency, *sweep, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
}

func run(appName, clientList string, execs int, strategyList string,
	workers, queue int, seed uint64, concurrency int, sweep bool, metrics string) error {

	a := apps.ByName(appName)
	if a == nil {
		names := make([]string, 0, 8)
		for _, x := range apps.All() {
			names = append(names, x.Name)
		}
		return fmt.Errorf("unknown benchmark %q (have %s)", appName, strings.Join(names, ", "))
	}
	strats, err := parseStrategies(strategyList)
	if err != nil {
		return err
	}
	sizes, err := parseInts(clientList)
	if err != nil {
		return fmt.Errorf("-clients: %w", err)
	}

	fmt.Printf("profiling %s...\n", a.Name)
	env, err := experiments.Prepare(a, seed)
	if err != nil {
		return err
	}
	w := fleet.WorkloadOf(env)
	server := core.SessionConfig{Workers: workers, QueueCap: queue}

	if sweep {
		return runSweep(w, sizes, strats, execs, server, seed, concurrency)
	}

	spec := fleet.MixedFleet(w, sizes[0], strats, execs, server, seed)
	spec.Concurrency = concurrency
	res, err := fleet.Run(spec)
	if err != nil {
		return err
	}
	res.WriteSummary(os.Stdout)
	if err := clientErrors(res); err != nil {
		return err
	}
	if metrics != "" {
		out := os.Stdout
		if metrics != "-" {
			f, err := os.Create(metrics)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := res.Registry().WriteJSON(out); err != nil {
			return err
		}
	}
	return nil
}

// runSweep prints the aggregate table: one row per (fleet size,
// strategy), each a homogeneous fleet, so the capacity cliff and the
// adaptive strategies' response to it line up column by column.
func runSweep(w fleet.Workload, sizes []int, strats []core.Strategy, execs int,
	server core.SessionConfig, seed uint64, concurrency int) error {

	fmt.Printf("\nfleet sweep on %s — server workers=%d queue=%d, %d executions/client\n\n",
		w.Name, server.Workers, server.QueueCap, execs)
	fmt.Printf("%7s %-5s | %12s %12s | %6s %6s %6s | %9s %6s\n",
		"clients", "strat", "energy/cli", "total", "served", "shed", "shed%", "max wait", "depth")
	for _, n := range sizes {
		for _, s := range strats {
			spec := fleet.MixedFleet(w, n, []core.Strategy{s}, execs, server, seed)
			spec.Concurrency = concurrency
			res, err := fleet.Run(spec)
			if err != nil {
				return err
			}
			if err := clientErrors(res); err != nil {
				return err
			}
			var maxWait float64
			for _, v := range res.Server.Waits {
				if v > maxWait {
					maxWait = v
				}
			}
			total := res.TotalEnergy()
			fmt.Printf("%7d %-5v | %12v %12v | %6d %6d %5.1f%% | %7.2fms %6d\n",
				n, s, total/energy.Joules(n), total,
				res.Server.Served, res.Server.Shed, 100*res.ShedRate(),
				maxWait*1e3, res.Server.MaxQueueDepth)
		}
	}
	return nil
}

func clientErrors(res *fleet.Result) error {
	for _, c := range res.Clients {
		if c.Err != "" {
			return fmt.Errorf("client %s: %s", c.ID, c.Err)
		}
	}
	return nil
}

func parseStrategies(list string) ([]core.Strategy, error) {
	var out []core.Strategy
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, s := range core.Strategies {
			if strings.EqualFold(s.String(), name) {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown strategy %q (have R, I, L1, L2, L3, AL, AA)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no strategies in %q", list)
	}
	return out, nil
}

func parseInts(list string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("fleet size %d must be positive", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
