// Command fleetsim simulates a fleet of Java-enabled handsets sharing
// a pool of offload servers, sweeping fleet size against server count
// and placement policy to show how admission control (bounded worker
// pools plus bounded queues) degrades — queue waits grow, requests are
// shed with busy errors, the adaptive strategies price those errors
// into their decisions and shift work back to local execution — and
// how spreading the same aggregate capacity across more backends
// changes the picture placement policy by placement policy.
//
// Usage:
//
//	fleetsim -app fe                          # default 32-client fleet, one server
//	fleetsim -app fe -clients 16 -servers 4 -placement p2c
//	fleetsim -app fe -clients 8,16,32,64 -servers 1,2,4 -placement all -sweep
//	fleetsim -app fe -clients 16 -strategies AA,AL,R -server-workers 2 -queue 4
//	fleetsim -app fe -clients 32 -metrics fleet.json
//	fleetsim -app fe -clients 32 -timeseries ts.jsonl -tick 0.0005
//	fleetsim -app fe -clients 64 -serve-metrics :9090    # curl :9090/metrics while it runs
//
// City-scale runs: arrivals spread over a diurnal curve, channels
// drift through a synthetic day, and per-client records stream to
// JSONL instead of accumulating in memory:
//
//	fleetsim -app mf -clients 100000 -execs 1 -sizes 16 \
//	    -arrival diurnal:0.5 -drift overnight -clients-out clients.jsonl
//
// Beyond 256 clients the per-client detail table switches itself off
// (aggregates still print); -clients-out keeps the per-client data.
//
// Backend chaos injection (single runs only, not -sweep):
//
//	fleetsim -app fe -servers 2 -fail s0@0.002              # hard crash at t=2ms
//	fleetsim -app fe -servers 2 -flap s0@0.001/0.002/0.004  # crash at 1ms, down 2ms, every 4ms
//	fleetsim -app fe -servers 2 -brownout s0@0.0005x8       # 8x service time from 0.5ms on
//	fleetsim -app fe -servers 2 -loss s0:0.35/4             # bursty per-backend loss
//	fleetsim -app fe -servers 2 -flap s0@0.001/0.002/0.004 -breakers global
//	fleetsim -app fe -clients 16 -servers 2 -chaos-sweep    # fault shape x placement x breakers grid
//
// -server-workers is the pool's aggregate worker budget: it is split
// evenly across the backends (-servers must divide it), so sweeping
// the server count compares placements at equal total capacity.
// -queue stays per backend.
//
// Every run is deterministic for a given -seed: the engine resolves
// the fleet's contention in virtual time, so the concurrency level
// (-concurrency) changes only wall-clock time, never results.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"greenvm/internal/apps"
	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/experiments"
	"greenvm/internal/fleet"
	"greenvm/internal/obs"
)

func main() {
	app := flag.String("app", "fe", "built-in benchmark the fleet runs")
	clients := flag.String("clients", "32", "fleet size, or a comma-separated list for -sweep")
	execs := flag.Int("execs", 4, "application executions per client")
	strategies := flag.String("strategies", "R,AL,AA", "comma-separated strategy mix cycled across clients")
	servers := flag.String("servers", "1", "backend server count, or a comma-separated list for -sweep")
	placement := flag.String("placement", "cheapest", "placement policy (cheapest, hash, p2c), a comma-separated list for -sweep, or 'all'")
	workers := flag.Int("server-workers", core.DefaultWorkers, "aggregate worker budget, split evenly across the backend servers")
	queue := flag.Int("queue", core.DefaultQueueCap, "per-backend admission queue capacity (-1: no waiting)")
	seed := flag.Uint64("seed", 42, "base seed; same seed, same results")
	concurrency := flag.Int("concurrency", 0, "client goroutines simulated in parallel (0 = GOMAXPROCS)")
	sweep := flag.Bool("sweep", false, "print the fleet-size x server-count x placement aggregate table instead of one run's detail")
	metrics := flag.String("metrics", "", "write the run's observability snapshot (JSON) to this file; '-' for stdout")
	fail := flag.String("fail", "", "hard-crash backends: comma-separated name@time entries, e.g. s0@0.002")
	flap := flag.String("flap", "", "flap backends: name@at/down/every entries, e.g. s0@0.001/0.002/0.004")
	brownout := flag.String("brownout", "", "brown out backends: name@at[+for]xfactor entries, e.g. s0@0.0005x8")
	loss := flag.String("loss", "", "attach bursty loss to backends: name:rate[/burst] entries, e.g. s0:0.35/4")
	breakers := flag.String("breakers", "backend", "circuit-breaker scope: backend (one per backend), global (one per link), off")
	chaosSweep := flag.Bool("chaos-sweep", false, "print the fault-shape x placement x breaker-mode grid (chaos on backend s0)")
	timeseries := flag.String("timeseries", "", "write the run's windowed virtual-time telemetry (JSONL) to this file; '-' for stdout")
	tick := flag.Float64("tick", 0.0005, "telemetry window width in virtual seconds (with -timeseries/-serve-metrics)")
	serveMetrics := flag.String("serve-metrics", "", "serve a live Prometheus scrape of the run (plus /debug/pprof) on this address, e.g. :9090")
	arrival := flag.String("arrival", "none", "cohort arrival curve: none, uniform:SPAN, diurnal:SPAN[/AMP]")
	drift := flag.String("drift", "none", "channel drift preset (none, overnight, commute); presets switch every client to a drifting channel")
	sizes := flag.String("sizes", "", "comma-separated input sizes overriding the app's size population")
	clientsOut := flag.String("clients-out", "", "stream per-client records (JSONL) to this file; '-' for stdout")
	flag.Parse()

	if err := run(*app, *clients, *execs, *strategies, *servers, *placement,
		*workers, *queue, *seed, *concurrency, *sweep, *metrics,
		chaosFlags{fail: *fail, flap: *flap, brownout: *brownout, loss: *loss,
			breakers: *breakers, sweep: *chaosSweep},
		telemetryFlags{path: *timeseries, tick: *tick, serve: *serveMetrics},
		popFlags{arrival: *arrival, drift: *drift, sizes: *sizes, clientsOut: *clientsOut}); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
}

// popFlags carries the raw cohort-shape flag values into run.
type popFlags struct {
	arrival    string // -arrival curve ("none" = everyone at t=0)
	drift      string // -drift channel preset ("none" = stationary)
	sizes      string // -sizes override ("" = app default)
	clientsOut string // -clients-out destination ('' = off, '-' = stdout)
}

// telemetryFlags carries the raw telemetry flag values into run.
type telemetryFlags struct {
	path  string  // -timeseries destination ('' = off, '-' = stdout)
	tick  float64 // window width in virtual seconds
	serve string  // -serve-metrics listen address ('' = off)
}

func (tf telemetryFlags) any() bool { return tf.path != "" || tf.serve != "" }

// validate rejects flag combinations telemetry cannot honour: sweeps
// run many specs (whose windows would overwrite each other), and a
// non-positive tick makes no windows at all.
func (tf telemetryFlags) validate(sweep, chaosSweep bool) error {
	if !tf.any() {
		return nil
	}
	if sweep || chaosSweep {
		return fmt.Errorf("-timeseries/-serve-metrics record a single run; drop -sweep/-chaos-sweep or the telemetry flags")
	}
	if tf.tick <= 0 {
		return fmt.Errorf("-tick %g: the telemetry window width must be positive", tf.tick)
	}
	return nil
}

// chaosFlags carries the raw chaos-injection flag values into run.
type chaosFlags struct {
	fail, flap, brownout, loss string
	breakers                   string
	sweep                      bool
}

func (c chaosFlags) any() bool {
	return c.fail != "" || c.flap != "" || c.brownout != "" || c.loss != ""
}

// fleetConfig is the validated shape of one invocation.
type fleetConfig struct {
	sizes      []int
	serverNs   []int
	placements []fleet.Placement
	workers    int // aggregate budget
	queue      int // per backend
}

// parseConfig validates the flag combinations that describe the fleet
// and the pool, so nonsense fails with a clear message instead of a
// silent default or a confusing run.
func parseConfig(clientList, serverList, placementList string,
	workers, queue int, sweep bool) (*fleetConfig, error) {

	sizes, err := parsePositiveInts(clientList)
	if err != nil {
		return nil, fmt.Errorf("-clients: %w", err)
	}
	serverNs, err := parsePositiveInts(serverList)
	if err != nil {
		return nil, fmt.Errorf("-servers: %w", err)
	}
	placements, err := parsePlacements(placementList)
	if err != nil {
		return nil, err
	}
	if !sweep {
		if len(sizes) > 1 {
			return nil, fmt.Errorf("-clients lists several fleet sizes; add -sweep, or pick one")
		}
		if len(serverNs) > 1 {
			return nil, fmt.Errorf("-servers lists several server counts; add -sweep, or pick one")
		}
		if len(placements) > 1 {
			return nil, fmt.Errorf("-placement lists several policies; add -sweep, or pick one")
		}
	}
	if workers < 1 {
		return nil, fmt.Errorf("-server-workers %d: the pool needs at least one worker", workers)
	}
	if queue == 0 {
		return nil, fmt.Errorf("-queue 0 is ambiguous: use -queue -1 to disable waiting, or omit the flag for the default (%d)", core.DefaultQueueCap)
	}
	if queue < -1 {
		return nil, fmt.Errorf("-queue %d: negative capacities other than -1 (no waiting) are meaningless", queue)
	}
	for _, n := range serverNs {
		if workers%n != 0 {
			return nil, fmt.Errorf("-server-workers %d does not split evenly across %d servers; the sweep compares placements at equal aggregate capacity", workers, n)
		}
	}
	return &fleetConfig{sizes: sizes, serverNs: serverNs, placements: placements,
		workers: workers, queue: queue}, nil
}

// serverConfig shapes one backend for a pool of n: the aggregate
// worker budget splits evenly (parseConfig enforced divisibility), the
// queue capacity is per backend.
func (c *fleetConfig) serverConfig(n int) core.SessionConfig {
	return core.SessionConfig{Workers: c.workers / n, QueueCap: c.queue}
}

// detailMax is the largest fleet whose per-client table still prints;
// beyond it a single run streams its records (dropping them unless
// -clients-out keeps them) and the summary shows aggregates only.
const detailMax = 256

// popParams is the validated cohort shape every fleet in an
// invocation shares; population expands it for a given size.
type popParams struct {
	strats  []core.Strategy
	execs   int
	seed    uint64
	arrival fleet.ArrivalSpec
	drift   fleet.DriftSpec
	sizes   []int
}

func (pp popParams) population(n int) *fleet.Population {
	opts := []fleet.PopOption{
		fleet.WithSeed(pp.seed),
		fleet.WithStrategyMix(pp.strats...),
		fleet.WithExecutions(pp.execs),
	}
	if pp.arrival.Kind != fleet.ArriveNone {
		opts = append(opts, fleet.WithArrivalCurve(pp.arrival))
	}
	if pp.drift.Name != "" && pp.drift.Name != "none" {
		// A drift preset makes every handset's channel non-stationary.
		opts = append(opts, fleet.WithChannelMix(fleet.ChannelDrifting), fleet.WithChannelDrift(pp.drift))
	}
	if len(pp.sizes) > 0 {
		opts = append(opts, fleet.WithSizes(pp.sizes...))
	}
	return fleet.NewPopulation(n, opts...)
}

func run(appName, clientList string, execs int, strategyList, serverList, placementList string,
	workers, queue int, seed uint64, concurrency int, sweep bool, metrics string, cf chaosFlags,
	tf telemetryFlags, pf popFlags) error {

	a := apps.ByName(appName)
	if a == nil {
		names := make([]string, 0, 8)
		for _, x := range apps.All() {
			names = append(names, x.Name)
		}
		return fmt.Errorf("unknown benchmark %q (have %s)", appName, strings.Join(names, ", "))
	}
	strats, err := parseStrategies(strategyList)
	if err != nil {
		return err
	}
	cfg, err := parseConfig(clientList, serverList, placementList, workers, queue, sweep)
	if err != nil {
		return err
	}
	mode, err := fleet.ParseBreakerMode(cf.breakers)
	if err != nil {
		return err
	}
	if sweep && (cf.any() || cf.sweep) {
		return fmt.Errorf("chaos flags and -sweep are mutually exclusive; chaos runs are single configurations (or -chaos-sweep)")
	}
	if cf.sweep && cf.any() {
		return fmt.Errorf("-chaos-sweep injects its own fault shapes; drop -fail/-flap/-brownout/-loss")
	}
	if err := tf.validate(sweep, cf.sweep); err != nil {
		return err
	}
	pp := popParams{strats: strats, execs: execs, seed: seed}
	if pp.arrival, err = fleet.ParseArrival(pf.arrival); err != nil {
		return err
	}
	if pp.drift, err = fleet.ParseDrift(pf.drift); err != nil {
		return err
	}
	if pf.sizes != "" {
		if pp.sizes, err = parsePositiveInts(pf.sizes); err != nil {
			return fmt.Errorf("-sizes: %w", err)
		}
	}
	if pf.clientsOut != "" && (sweep || cf.sweep) {
		return fmt.Errorf("-clients-out records a single run; drop -sweep/-chaos-sweep")
	}
	chaos, err := parseChaos(cf.fail, cf.flap, cf.brownout, cf.loss, cfg.serverNs[0])
	if err != nil {
		return err
	}

	fmt.Printf("profiling %s...\n", a.Name)
	env, err := experiments.Prepare(a, seed)
	if err != nil {
		return err
	}
	w := fleet.WorkloadOf(env)

	if sweep {
		return runSweep(w, cfg, pp, concurrency)
	}
	if cf.sweep {
		return runChaosSweep(w, cfg, pp, concurrency)
	}

	n := cfg.sizes[0]
	ns := cfg.serverNs[0]
	spec := fleet.Spec{
		Workload:   w,
		Population: pp.population(n),
		Server:     cfg.serverConfig(ns),
	}
	spec.Servers = ns
	spec.Placement = cfg.placements[0]
	spec.Concurrency = concurrency
	spec.Chaos = chaos
	spec.Breakers = mode
	if tf.any() {
		spec.Telemetry = &fleet.TelemetrySpec{Tick: energy.Seconds(tf.tick)}
	}
	if tf.serve != "" {
		reg := obs.NewRegistry()
		spec.Telemetry.Live = reg
		ln, err := net.Listen("tcp", tf.serve)
		if err != nil {
			return fmt.Errorf("-serve-metrics: %w", err)
		}
		defer ln.Close()
		fmt.Printf("serving live metrics on http://%s/metrics (pprof on /debug/pprof/)\n", ln.Addr())
		srv := &http.Server{Handler: obs.HTTPHandler(reg, obs.WithPprof())}
		defer srv.Close()
		go srv.Serve(ln) //nolint:errcheck
	}

	// Large fleets and -clients-out both stream: per-client records
	// retire through the sink instead of accumulating in Result.
	var catch errCatcher
	var cw *clientWriter
	if pf.clientsOut != "" {
		out := os.Stdout
		if pf.clientsOut != "-" {
			f, err := os.Create(pf.clientsOut)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		cw = newClientWriter(out, n, spec)
		spec.ResultSink = func(cr fleet.ClientResult) {
			catch.see(cr)
			cw.write(cr)
		}
	} else if n > detailMax {
		fmt.Printf("fleet of %d exceeds the %d-client detail threshold; streaming aggregates only (-clients-out keeps per-client records)\n",
			n, detailMax)
		spec.ResultSink = catch.see
	}

	res, err := fleet.Run(spec)
	if err != nil {
		return err
	}
	if cw != nil {
		if err := cw.finish(); err != nil {
			return fmt.Errorf("-clients-out: %w", err)
		}
	}
	res.WriteSummary(os.Stdout)
	if tf.path != "" {
		out := os.Stdout
		if tf.path != "-" {
			f, err := os.Create(tf.path)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := res.Series.WriteJSONL(out); err != nil {
			return err
		}
	}
	if err := clientErrors(res, &catch); err != nil {
		return err
	}
	if metrics != "" {
		out := os.Stdout
		if metrics != "-" {
			f, err := os.Create(metrics)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := res.Registry().WriteJSON(out); err != nil {
			return err
		}
	}
	return nil
}

// runSweep prints the aggregate table: one row per (fleet size, server
// count, placement), each a mixed-strategy fleet against the same
// aggregate worker budget, so the capacity cliff — and how each
// placement policy spends the same capacity — lines up column by
// column.
func runSweep(w fleet.Workload, cfg *fleetConfig, pp popParams, concurrency int) error {
	fmt.Printf("\nfleet sweep on %s — aggregate workers=%d, queue/backend=%d, %d executions/client, strategies %v\n\n",
		w.Name, cfg.workers, cfg.queue, pp.execs, pp.strats)
	fmt.Printf("%7s %7s %-8s | %12s %12s | %6s %6s %6s | %9s %6s\n",
		"clients", "servers", "place", "energy/cli", "total", "served", "shed", "shed%", "max wait", "depth")
	for _, n := range cfg.sizes {
		for _, ns := range cfg.serverNs {
			for _, pl := range cfg.placements {
				var catch errCatcher
				spec := fleet.Spec{
					Workload:   w,
					Population: pp.population(n),
					Server:     cfg.serverConfig(ns),
					// Sweeps only read aggregates: stream-and-drop the
					// per-client records so big cells stay flat in memory.
					ResultSink: catch.see,
				}
				spec.Servers = ns
				spec.Placement = pl
				spec.Concurrency = concurrency
				res, err := fleet.Run(spec)
				if err != nil {
					return err
				}
				if err := clientErrors(res, &catch); err != nil {
					return err
				}
				maxWait := res.Server.WaitDist.Max
				total := res.TotalEnergy()
				fmt.Printf("%7d %7d %-8s | %12v %12v | %6d %6d %5.1f%% | %7.2fms %6d\n",
					n, ns, pl, total/energy.Joules(n), total,
					res.Server.Served, res.Server.Shed, 100*res.ShedRate(),
					maxWait*1e3, res.Server.MaxQueueDepth)
			}
		}
	}
	return nil
}

// sweepBreaker is the breaker prototype chaos-sweep clients run with.
// Two consecutive attributed losses open a breaker; the cooldown is
// long relative to the inter-invocation gap (tenths of a virtual
// second vs. milliseconds), so an open breaker actually shapes the
// following decisions instead of silently healing between them.
func sweepBreaker() *core.Breaker {
	return &core.Breaker{Threshold: 2, Cooldown: 0.05, MaxCooldown: 0.4, ProbeBytes: 16}
}

// runChaosSweep prints the resilience grid: every canonical fault
// shape injected on backend s0, crossed with every placement policy
// and every breaker scope, at one fleet size and server count. The
// interesting comparison is down the breakers column: per-backend
// breakers should shed and fall back strictly less than a global
// breaker under a single-backend fault, because only the faulty
// backend goes dark.
func runChaosSweep(w fleet.Workload, cfg *fleetConfig, pp popParams, concurrency int) error {
	ns := cfg.serverNs[0]
	if ns < 2 {
		return fmt.Errorf("-chaos-sweep needs -servers >= 2: a single-backend fault is only survivable when another backend exists")
	}
	n := cfg.sizes[0]
	fmt.Printf("\nchaos sweep on %s — %d clients, %d servers, fault on s0, aggregate workers=%d, queue/backend=%d\n\n",
		w.Name, n, ns, cfg.workers, cfg.queue)
	fmt.Printf("%-9s %-8s %-8s | %12s | %6s %6s %6s %6s %6s %7s\n",
		"fault", "place", "breakers", "energy/cli", "served", "shed", "fellbk", "failov", "warmup", "crashes")
	for _, shape := range fleet.SweepChaosShapes() {
		for _, pl := range fleet.Placements {
			for _, mode := range fleet.BreakerModes {
				chaos := make([]fleet.BackendChaos, ns)
				chaos[0] = shape.Chaos
				var catch errCatcher
				spec := fleet.Spec{
					Workload:   w,
					Population: pp.population(n),
					Server:     cfg.serverConfig(ns),
					ResultSink: catch.see,
				}
				spec.Servers = ns
				spec.Placement = pl
				spec.Concurrency = concurrency
				spec.Chaos = chaos
				spec.Breakers = mode
				spec.Breaker = sweepBreaker()
				res, err := fleet.Run(spec)
				if err != nil {
					return err
				}
				if err := clientErrors(res, &catch); err != nil {
					return err
				}
				flaps := 0
				for _, b := range res.Backends {
					flaps += b.Flaps
				}
				fmt.Printf("%-9s %-8s %-8s | %12v | %6d %6d %6d %6d %6d %7d\n",
					shape.Name, pl, mode,
					res.TotalEnergy()/energy.Joules(n),
					res.Server.Served, res.Server.Shed, res.TotalFallbacks(),
					res.TotalFailovers(), res.TotalWarmups(), flaps)
			}
		}
	}
	return nil
}

// parseChaos folds the four chaos flags into per-backend fault specs
// (nil when no flag is set). Backend names must exist in a pool of
// `servers` backends, so typos fail before a run silently injects
// nothing.
func parseChaos(fail, flap, brownout, loss string, servers int) ([]fleet.BackendChaos, error) {
	if fail == "" && flap == "" && brownout == "" && loss == "" {
		return nil, nil
	}
	chaos := make([]fleet.BackendChaos, servers)
	idx := func(flag, name string) (int, error) {
		name = strings.TrimSpace(name)
		for i := 0; i < servers; i++ {
			if name == fmt.Sprintf("s%d", i) {
				return i, nil
			}
		}
		return 0, fmt.Errorf("%s: unknown backend %q (the pool has s0..s%d)", flag, name, servers-1)
	}
	secs := func(flag, s string) (energy.Seconds, error) {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("%s: %q is not a positive duration in virtual seconds", flag, s)
		}
		return energy.Seconds(v), nil
	}
	for _, ent := range splitEntries(fail) {
		name, rest, ok := strings.Cut(ent, "@")
		if !ok {
			return nil, fmt.Errorf("-fail %q: want name@time, e.g. s0@0.002", ent)
		}
		i, err := idx("-fail", name)
		if err != nil {
			return nil, err
		}
		t, err := secs("-fail", rest)
		if err != nil {
			return nil, err
		}
		chaos[i].FailAt = t
	}
	for _, ent := range splitEntries(flap) {
		name, rest, ok := strings.Cut(ent, "@")
		if !ok {
			return nil, fmt.Errorf("-flap %q: want name@at[/down[/every]], e.g. s0@0.001/0.002/0.004", ent)
		}
		i, err := idx("-flap", name)
		if err != nil {
			return nil, err
		}
		parts := strings.Split(rest, "/")
		if len(parts) > 3 {
			return nil, fmt.Errorf("-flap %q: want at most at/down/every", ent)
		}
		if chaos[i].FlapAt, err = secs("-flap", parts[0]); err != nil {
			return nil, err
		}
		if len(parts) > 1 {
			if chaos[i].FlapDown, err = secs("-flap", parts[1]); err != nil {
				return nil, err
			}
		}
		if len(parts) > 2 {
			if chaos[i].FlapEvery, err = secs("-flap", parts[2]); err != nil {
				return nil, err
			}
		}
	}
	for _, ent := range splitEntries(brownout) {
		name, rest, ok := strings.Cut(ent, "@")
		if !ok {
			return nil, fmt.Errorf("-brownout %q: want name@at[+for]xfactor, e.g. s0@0.0005x8", ent)
		}
		i, err := idx("-brownout", name)
		if err != nil {
			return nil, err
		}
		times, factor, ok := strings.Cut(rest, "x")
		if !ok {
			return nil, fmt.Errorf("-brownout %q: missing the xfactor suffix, e.g. s0@0.0005x8", ent)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(factor), 64)
		if err != nil || f <= 1 {
			return nil, fmt.Errorf("-brownout %q: factor %q must be > 1", ent, factor)
		}
		chaos[i].BrownoutFactor = f
		at, dur, hasDur := strings.Cut(times, "+")
		if chaos[i].BrownoutAt, err = secs("-brownout", at); err != nil {
			return nil, err
		}
		if hasDur {
			if chaos[i].BrownoutFor, err = secs("-brownout", dur); err != nil {
				return nil, err
			}
		}
	}
	for _, ent := range splitEntries(loss) {
		name, rest, ok := strings.Cut(ent, ":")
		if !ok {
			return nil, fmt.Errorf("-loss %q: want name:rate[/burst], e.g. s0:0.35/4", ent)
		}
		i, err := idx("-loss", name)
		if err != nil {
			return nil, err
		}
		rate, burst, hasBurst := strings.Cut(rest, "/")
		r, err := strconv.ParseFloat(strings.TrimSpace(rate), 64)
		if err != nil || r <= 0 || r >= 1 {
			return nil, fmt.Errorf("-loss %q: rate %q must be in (0, 1)", ent, rate)
		}
		chaos[i].LossRate = r
		if hasBurst {
			b, err := strconv.ParseFloat(strings.TrimSpace(burst), 64)
			if err != nil || b < 1 {
				return nil, fmt.Errorf("-loss %q: burst %q must be >= 1", ent, burst)
			}
			chaos[i].LossBurst = b
		}
	}
	return chaos, nil
}

// splitEntries splits a comma-separated flag value, dropping empties.
func splitEntries(list string) []string {
	var out []string
	for _, f := range strings.Split(list, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// errCatcher remembers the first failed client of a streamed run,
// where Result.Clients is nil. see is safe as a ResultSink: the
// emitter serializes calls.
type errCatcher struct{ id, msg string }

func (e *errCatcher) see(cr fleet.ClientResult) {
	if cr.Err != "" && e.msg == "" {
		e.id, e.msg = cr.ID, cr.Err
	}
}

func clientErrors(res *fleet.Result, catch *errCatcher) error {
	for _, c := range res.Clients {
		if c.Err != "" {
			return fmt.Errorf("client %s: %s", c.ID, c.Err)
		}
	}
	if catch != nil && catch.msg != "" {
		return fmt.Errorf("client %s: %s (%d of %d clients failed)",
			catch.id, catch.msg, res.Totals.Errors, res.Totals.Clients)
	}
	return nil
}

// clientRecord is one line of a -clients-out JSONL stream.
type clientRecord struct {
	Client    string  `json:"client"`
	Strategy  string  `json:"strategy"`
	EnergyJ   float64 `json:"energy_j"`
	TimeS     float64 `json:"time_s"`
	Served    int     `json:"served"`
	Shed      int     `json:"shed"`
	CacheHits int     `json:"cache_hits"`
	Fallbacks int     `json:"fallbacks"`
	Failovers int     `json:"failovers"`
	AvgWaitS  float64 `json:"avg_wait_s"`
	MaxWaitS  float64 `json:"max_wait_s"`
	Err       string  `json:"err,omitempty"`
}

// clientHeader is the first line of the stream: enough to validate a
// file without parsing every record.
type clientHeader struct {
	Schema  string `json:"schema"`
	Clients int    `json:"clients"`
	App     string `json:"app"`
	Arrival string `json:"arrival"`
	Drift   string `json:"drift"`
}

// clientWriter streams ClientResult records as JSONL. Records arrive
// in deterministic arrival order from the emitter (already
// serialized), so the file is byte-stable for a given spec. The first
// encode error sticks; finish reports it after the run.
type clientWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

func newClientWriter(out io.Writer, n int, spec fleet.Spec) *clientWriter {
	drift := spec.Population.Drift().Name
	if drift == "" {
		drift = "none"
	}
	bw := bufio.NewWriterSize(out, 1<<16)
	cw := &clientWriter{bw: bw, enc: json.NewEncoder(bw)}
	cw.err = cw.enc.Encode(clientHeader{
		Schema:  "greenvm-fleet-clients/1",
		Clients: n,
		App:     spec.Workload.Name,
		Arrival: spec.Population.Arrival().String(),
		Drift:   drift,
	})
	return cw
}

func (cw *clientWriter) write(cr fleet.ClientResult) {
	if cw.err != nil {
		return
	}
	cw.err = cw.enc.Encode(clientRecord{
		Client:    cr.ID,
		Strategy:  cr.Strategy.String(),
		EnergyJ:   float64(cr.Energy),
		TimeS:     float64(cr.Time),
		Served:    cr.Served,
		Shed:      cr.Shed,
		CacheHits: cr.Session.CacheHits,
		Fallbacks: cr.Stats.Fallbacks,
		Failovers: cr.Stats.Failovers,
		AvgWaitS:  float64(cr.AvgWait),
		MaxWaitS:  float64(cr.MaxWait),
		Err:       cr.Err,
	})
}

func (cw *clientWriter) finish() error {
	if cw.err != nil {
		return cw.err
	}
	return cw.bw.Flush()
}

func parseStrategies(list string) ([]core.Strategy, error) {
	var out []core.Strategy
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, s := range core.Strategies {
			if strings.EqualFold(s.String(), name) {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown strategy %q (have R, I, L1, L2, L3, AL, AA)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no strategies in %q", list)
	}
	return out, nil
}

// parsePlacements parses the -placement flag: one policy, a comma
// list, or "all" for every policy in sweep order.
func parsePlacements(list string) ([]fleet.Placement, error) {
	if strings.EqualFold(strings.TrimSpace(list), "all") {
		return fleet.Placements, nil
	}
	var out []fleet.Placement
	for _, name := range strings.Split(list, ",") {
		if strings.TrimSpace(name) == "" {
			continue
		}
		p, err := fleet.ParsePlacement(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no placements in %q", list)
	}
	return out, nil
}

func parsePositiveInts(list string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("%d must be positive", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
