// Command fleetsim simulates a fleet of Java-enabled handsets sharing
// a pool of offload servers, sweeping fleet size against server count
// and placement policy to show how admission control (bounded worker
// pools plus bounded queues) degrades — queue waits grow, requests are
// shed with busy errors, the adaptive strategies price those errors
// into their decisions and shift work back to local execution — and
// how spreading the same aggregate capacity across more backends
// changes the picture placement policy by placement policy.
//
// Usage:
//
//	fleetsim -app fe                          # default 32-client fleet, one server
//	fleetsim -app fe -clients 16 -servers 4 -placement p2c
//	fleetsim -app fe -clients 8,16,32,64 -servers 1,2,4 -placement all -sweep
//	fleetsim -app fe -clients 16 -strategies AA,AL,R -server-workers 2 -queue 4
//	fleetsim -app fe -clients 32 -metrics fleet.json
//
// -server-workers is the pool's aggregate worker budget: it is split
// evenly across the backends (-servers must divide it), so sweeping
// the server count compares placements at equal total capacity.
// -queue stays per backend.
//
// Every run is deterministic for a given -seed: the engine resolves
// the fleet's contention in virtual time, so the concurrency level
// (-concurrency) changes only wall-clock time, never results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"greenvm/internal/apps"
	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/experiments"
	"greenvm/internal/fleet"
)

func main() {
	app := flag.String("app", "fe", "built-in benchmark the fleet runs")
	clients := flag.String("clients", "32", "fleet size, or a comma-separated list for -sweep")
	execs := flag.Int("execs", 4, "application executions per client")
	strategies := flag.String("strategies", "R,AL,AA", "comma-separated strategy mix cycled across clients")
	servers := flag.String("servers", "1", "backend server count, or a comma-separated list for -sweep")
	placement := flag.String("placement", "cheapest", "placement policy (cheapest, hash, p2c), a comma-separated list for -sweep, or 'all'")
	workers := flag.Int("server-workers", core.DefaultWorkers, "aggregate worker budget, split evenly across the backend servers")
	queue := flag.Int("queue", core.DefaultQueueCap, "per-backend admission queue capacity (-1: no waiting)")
	seed := flag.Uint64("seed", 42, "base seed; same seed, same results")
	concurrency := flag.Int("concurrency", 0, "client goroutines simulated in parallel (0 = GOMAXPROCS)")
	sweep := flag.Bool("sweep", false, "print the fleet-size x server-count x placement aggregate table instead of one run's detail")
	metrics := flag.String("metrics", "", "write the run's observability snapshot (JSON) to this file; '-' for stdout")
	flag.Parse()

	if err := run(*app, *clients, *execs, *strategies, *servers, *placement,
		*workers, *queue, *seed, *concurrency, *sweep, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
}

// fleetConfig is the validated shape of one invocation.
type fleetConfig struct {
	sizes      []int
	serverNs   []int
	placements []fleet.Placement
	workers    int // aggregate budget
	queue      int // per backend
}

// parseConfig validates the flag combinations that describe the fleet
// and the pool, so nonsense fails with a clear message instead of a
// silent default or a confusing run.
func parseConfig(clientList, serverList, placementList string,
	workers, queue int, sweep bool) (*fleetConfig, error) {

	sizes, err := parsePositiveInts(clientList)
	if err != nil {
		return nil, fmt.Errorf("-clients: %w", err)
	}
	serverNs, err := parsePositiveInts(serverList)
	if err != nil {
		return nil, fmt.Errorf("-servers: %w", err)
	}
	placements, err := parsePlacements(placementList)
	if err != nil {
		return nil, err
	}
	if !sweep {
		if len(sizes) > 1 {
			return nil, fmt.Errorf("-clients lists several fleet sizes; add -sweep, or pick one")
		}
		if len(serverNs) > 1 {
			return nil, fmt.Errorf("-servers lists several server counts; add -sweep, or pick one")
		}
		if len(placements) > 1 {
			return nil, fmt.Errorf("-placement lists several policies; add -sweep, or pick one")
		}
	}
	if workers < 1 {
		return nil, fmt.Errorf("-server-workers %d: the pool needs at least one worker", workers)
	}
	if queue == 0 {
		return nil, fmt.Errorf("-queue 0 is ambiguous: use -queue -1 to disable waiting, or omit the flag for the default (%d)", core.DefaultQueueCap)
	}
	if queue < -1 {
		return nil, fmt.Errorf("-queue %d: negative capacities other than -1 (no waiting) are meaningless", queue)
	}
	for _, n := range serverNs {
		if workers%n != 0 {
			return nil, fmt.Errorf("-server-workers %d does not split evenly across %d servers; the sweep compares placements at equal aggregate capacity", workers, n)
		}
	}
	return &fleetConfig{sizes: sizes, serverNs: serverNs, placements: placements,
		workers: workers, queue: queue}, nil
}

// serverConfig shapes one backend for a pool of n: the aggregate
// worker budget splits evenly (parseConfig enforced divisibility), the
// queue capacity is per backend.
func (c *fleetConfig) serverConfig(n int) core.SessionConfig {
	return core.SessionConfig{Workers: c.workers / n, QueueCap: c.queue}
}

func run(appName, clientList string, execs int, strategyList, serverList, placementList string,
	workers, queue int, seed uint64, concurrency int, sweep bool, metrics string) error {

	a := apps.ByName(appName)
	if a == nil {
		names := make([]string, 0, 8)
		for _, x := range apps.All() {
			names = append(names, x.Name)
		}
		return fmt.Errorf("unknown benchmark %q (have %s)", appName, strings.Join(names, ", "))
	}
	strats, err := parseStrategies(strategyList)
	if err != nil {
		return err
	}
	cfg, err := parseConfig(clientList, serverList, placementList, workers, queue, sweep)
	if err != nil {
		return err
	}

	fmt.Printf("profiling %s...\n", a.Name)
	env, err := experiments.Prepare(a, seed)
	if err != nil {
		return err
	}
	w := fleet.WorkloadOf(env)

	if sweep {
		return runSweep(w, cfg, strats, execs, seed, concurrency)
	}

	n := cfg.serverNs[0]
	spec := fleet.MixedFleet(w, cfg.sizes[0], strats, execs, cfg.serverConfig(n), seed)
	spec.Servers = n
	spec.Placement = cfg.placements[0]
	spec.Concurrency = concurrency
	res, err := fleet.Run(spec)
	if err != nil {
		return err
	}
	res.WriteSummary(os.Stdout)
	if err := clientErrors(res); err != nil {
		return err
	}
	if metrics != "" {
		out := os.Stdout
		if metrics != "-" {
			f, err := os.Create(metrics)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := res.Registry().WriteJSON(out); err != nil {
			return err
		}
	}
	return nil
}

// runSweep prints the aggregate table: one row per (fleet size, server
// count, placement), each a mixed-strategy fleet against the same
// aggregate worker budget, so the capacity cliff — and how each
// placement policy spends the same capacity — lines up column by
// column.
func runSweep(w fleet.Workload, cfg *fleetConfig, strats []core.Strategy, execs int,
	seed uint64, concurrency int) error {

	fmt.Printf("\nfleet sweep on %s — aggregate workers=%d, queue/backend=%d, %d executions/client, strategies %v\n\n",
		w.Name, cfg.workers, cfg.queue, execs, strats)
	fmt.Printf("%7s %7s %-8s | %12s %12s | %6s %6s %6s | %9s %6s\n",
		"clients", "servers", "place", "energy/cli", "total", "served", "shed", "shed%", "max wait", "depth")
	for _, n := range cfg.sizes {
		for _, ns := range cfg.serverNs {
			for _, pl := range cfg.placements {
				spec := fleet.MixedFleet(w, n, strats, execs, cfg.serverConfig(ns), seed)
				spec.Servers = ns
				spec.Placement = pl
				spec.Concurrency = concurrency
				res, err := fleet.Run(spec)
				if err != nil {
					return err
				}
				if err := clientErrors(res); err != nil {
					return err
				}
				var maxWait float64
				for _, v := range res.Server.Waits {
					if v > maxWait {
						maxWait = v
					}
				}
				total := res.TotalEnergy()
				fmt.Printf("%7d %7d %-8s | %12v %12v | %6d %6d %5.1f%% | %7.2fms %6d\n",
					n, ns, pl, total/energy.Joules(n), total,
					res.Server.Served, res.Server.Shed, 100*res.ShedRate(),
					maxWait*1e3, res.Server.MaxQueueDepth)
			}
		}
	}
	return nil
}

func clientErrors(res *fleet.Result) error {
	for _, c := range res.Clients {
		if c.Err != "" {
			return fmt.Errorf("client %s: %s", c.ID, c.Err)
		}
	}
	return nil
}

func parseStrategies(list string) ([]core.Strategy, error) {
	var out []core.Strategy
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, s := range core.Strategies {
			if strings.EqualFold(s.String(), name) {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown strategy %q (have R, I, L1, L2, L3, AL, AA)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no strategies in %q", list)
	}
	return out, nil
}

// parsePlacements parses the -placement flag: one policy, a comma
// list, or "all" for every policy in sweep order.
func parsePlacements(list string) ([]fleet.Placement, error) {
	if strings.EqualFold(strings.TrimSpace(list), "all") {
		return fleet.Placements, nil
	}
	var out []fleet.Placement
	for _, name := range strings.Split(list, ",") {
		if strings.TrimSpace(name) == "" {
			continue
		}
		p, err := fleet.ParsePlacement(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no placements in %q", list)
	}
	return out, nil
}

func parsePositiveInts(list string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("%d must be positive", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
