module greenvm

go 1.22
